// Package bugs models the sanitizer findings CMFuzz reports. In the paper,
// crashes surface as AddressSanitizer reports from C targets; here the Go
// protocol subjects contain seeded, configuration-gated defects that panic
// with a typed *Crash value. The fuzzing monitor recovers the panic,
// classifies it, and deduplicates it exactly like an ASan triage pipeline
// dedups by (report kind, faulting function).
package bugs

import (
	"fmt"
	"sort"
	"sync"
)

// Kind is the sanitizer report category of a crash.
type Kind int

// The sanitizer categories that appear in the paper's Table II, plus
// AbnormalExit for live targets: an external server process that dies
// with a nonzero exit code (or a signal with no finer classification)
// has no sanitizer report, only an exit status and a stderr tail.
const (
	HeapUseAfterFree Kind = iota
	SEGV
	MemoryLeak
	AllocationSizeTooBig
	StackBufferOverflow
	HeapBufferOverflow
	AbnormalExit
)

var kindNames = [...]string{
	HeapUseAfterFree:     "heap-use-after-free",
	SEGV:                 "SEGV",
	MemoryLeak:           "memory leaks",
	AllocationSizeTooBig: "allocation-size-too-big",
	StackBufferOverflow:  "stack-buffer-overflow",
	HeapBufferOverflow:   "heap-buffer-overflow",
	AbnormalExit:         "abnormal-exit",
}

// String returns the ASan-style name of the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// A Crash is one sanitizer finding: a defect of some Kind observed in
// Function of a Protocol implementation. Detail carries free-form context
// (the simulated fault address, the offending size, ...).
type Crash struct {
	Protocol string
	Kind     Kind
	Function string
	Detail   string
}

// Error makes *Crash usable as an error and as a panic payload.
func (c *Crash) Error() string {
	return fmt.Sprintf("%s: %s in %s (%s)", c.Protocol, c.Kind, c.Function, c.Detail)
}

// ID returns the deduplication key for the crash. Two crashes with the
// same ID are considered the same underlying bug.
func (c *Crash) ID() string {
	return c.Protocol + "/" + c.Kind.String() + "/" + c.Function
}

// Trigger simulates hitting a seeded defect: it panics with a *Crash that
// the fuzzing monitor is expected to recover.
func Trigger(protocol string, kind Kind, function, detail string) {
	panic(&Crash{Protocol: protocol, Kind: kind, Function: function, Detail: detail})
}

// Capture runs f and converts a *Crash panic into a returned crash.
// Other panics propagate: they indicate harness bugs, not subject bugs.
func Capture(f func()) (crash *Crash) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(*Crash)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	f()
	return nil
}

// A Report is a deduplicated crash with discovery metadata.
type Report struct {
	Crash    Crash
	Instance int     // parallel instance that found it
	Time     float64 // virtual seconds since campaign start
	Config   string  // rendered configuration active at discovery
	Count    int     // how many times the bug was hit in total
}

// A Ledger collects crashes during a campaign and deduplicates them by
// Crash.ID. It is safe for concurrent use by parallel instances.
type Ledger struct {
	mu      sync.Mutex
	reports map[string]*Report
}

// NewLedger returns an empty crash ledger.
func NewLedger() *Ledger {
	return &Ledger{reports: make(map[string]*Report)}
}

// RestoreLedger rebuilds a ledger from previously exported reports,
// preserving discovery metadata and hit counts, so a resumed campaign
// deduplicates against — and keeps counting — the bugs found before the
// checkpoint.
func RestoreLedger(reports []Report) *Ledger {
	l := NewLedger()
	for _, r := range reports {
		rc := r
		l.reports[rc.Crash.ID()] = &rc
	}
	return l
}

// Record files a crash observed by instance at virtual time t under the
// given rendered configuration. It reports whether the crash was new.
func (l *Ledger) Record(c *Crash, instance int, t float64, config string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := c.ID()
	if r, ok := l.reports[id]; ok {
		r.Count++
		return false
	}
	l.reports[id] = &Report{Crash: *c, Instance: instance, Time: t, Config: config, Count: 1}
	return true
}

// Unique returns the deduplicated reports ordered by discovery time, then
// by crash ID for determinism.
func (l *Ledger) Unique() []Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Report, 0, len(l.reports))
	for _, r := range l.reports {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Crash.ID() < out[j].Crash.ID()
	})
	return out
}

// Len returns the number of unique bugs recorded.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.reports)
}

// Merge folds all reports of o into l, keeping the earliest discovery of
// each bug.
func (l *Ledger) Merge(o *Ledger) {
	for _, r := range o.Unique() {
		l.mu.Lock()
		id := r.Crash.ID()
		if cur, ok := l.reports[id]; ok {
			cur.Count += r.Count
			if r.Time < cur.Time {
				cur.Time, cur.Instance, cur.Config = r.Time, r.Instance, r.Config
			}
		} else {
			rc := r
			l.reports[id] = &rc
		}
		l.mu.Unlock()
	}
}
