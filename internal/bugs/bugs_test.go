package bugs

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		HeapUseAfterFree:     "heap-use-after-free",
		SEGV:                 "SEGV",
		MemoryLeak:           "memory leaks",
		AllocationSizeTooBig: "allocation-size-too-big",
		StackBufferOverflow:  "stack-buffer-overflow",
		HeapBufferOverflow:   "heap-buffer-overflow",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("out-of-range kind should include numeric value")
	}
}

func TestCrashErrorAndID(t *testing.T) {
	c := &Crash{Protocol: "CoAP", Kind: SEGV, Function: "coap_handle_request_put_block", Detail: "nil body_data"}
	if !strings.Contains(c.Error(), "SEGV") || !strings.Contains(c.Error(), "CoAP") {
		t.Errorf("Error() = %q missing fields", c.Error())
	}
	if c.ID() != "CoAP/SEGV/coap_handle_request_put_block" {
		t.Errorf("ID() = %q", c.ID())
	}
}

func TestTriggerAndCapture(t *testing.T) {
	crash := Capture(func() {
		Trigger("DNS", HeapBufferOverflow, "get16bits", "read past end")
	})
	if crash == nil {
		t.Fatal("Capture returned nil for triggered crash")
	}
	if crash.Kind != HeapBufferOverflow || crash.Protocol != "DNS" {
		t.Fatalf("captured wrong crash: %+v", crash)
	}
	if Capture(func() {}) != nil {
		t.Fatal("Capture of clean function returned a crash")
	}
}

func TestCapturePropagatesForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic was swallowed")
		}
	}()
	Capture(func() { panic("harness bug") })
}

func TestLedgerDedup(t *testing.T) {
	l := NewLedger()
	c := &Crash{Protocol: "MQTT", Kind: SEGV, Function: "loop_accepted"}
	if !l.Record(c, 0, 10, "cfg-a") {
		t.Fatal("first Record not new")
	}
	if l.Record(c, 1, 20, "cfg-b") {
		t.Fatal("duplicate Record reported new")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	r := l.Unique()[0]
	if r.Count != 2 || r.Time != 10 || r.Instance != 0 {
		t.Fatalf("report = %+v, want first-discovery metadata with count 2", r)
	}
}

func TestLedgerUniqueOrdering(t *testing.T) {
	l := NewLedger()
	l.Record(&Crash{Protocol: "B", Kind: SEGV, Function: "f"}, 0, 30, "")
	l.Record(&Crash{Protocol: "A", Kind: SEGV, Function: "f"}, 0, 10, "")
	l.Record(&Crash{Protocol: "C", Kind: SEGV, Function: "f"}, 0, 10, "")
	u := l.Unique()
	if u[0].Crash.Protocol != "A" || u[1].Crash.Protocol != "C" || u[2].Crash.Protocol != "B" {
		t.Fatalf("ordering wrong: %v %v %v", u[0].Crash.Protocol, u[1].Crash.Protocol, u[2].Crash.Protocol)
	}
}

func TestLedgerMerge(t *testing.T) {
	a, b := NewLedger(), NewLedger()
	c1 := &Crash{Protocol: "MQTT", Kind: SEGV, Function: "f"}
	a.Record(c1, 0, 50, "late")
	b.Record(c1, 2, 5, "early")
	b.Record(&Crash{Protocol: "DNS", Kind: MemoryLeak, Function: "g"}, 1, 7, "")
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged len = %d, want 2", a.Len())
	}
	for _, r := range a.Unique() {
		if r.Crash.Protocol == "MQTT" {
			if r.Time != 5 || r.Instance != 2 || r.Config != "early" {
				t.Fatalf("merge did not keep earliest discovery: %+v", r)
			}
			if r.Count != 2 {
				t.Fatalf("merge count = %d, want 2", r.Count)
			}
		}
	}
}

func TestTable2Complete(t *testing.T) {
	if len(Table2) != 14 {
		t.Fatalf("Table2 has %d rows, want 14", len(Table2))
	}
	perProto := map[string]int{}
	for i, k := range Table2 {
		if k.No != i+1 {
			t.Errorf("row %d numbered %d", i, k.No)
		}
		perProto[k.Protocol]++
	}
	want := map[string]int{"MQTT": 5, "CoAP": 3, "AMQP": 1, "DNS": 5}
	for p, n := range want {
		if perProto[p] != n {
			t.Errorf("protocol %s has %d rows, want %d", p, perProto[p], n)
		}
	}
}

func TestLookupKnown(t *testing.T) {
	c := &Crash{Protocol: "CoAP", Kind: SEGV, Function: "coap_handle_request_put_block"}
	k, ok := LookupKnown(c)
	if !ok || k.No != 8 {
		t.Fatalf("LookupKnown bug#8 = %+v, %v", k, ok)
	}
	if _, ok := LookupKnown(&Crash{Protocol: "CoAP", Kind: SEGV, Function: "nope"}); ok {
		t.Fatal("LookupKnown matched unknown crash")
	}
}

func TestKnownByProtocol(t *testing.T) {
	if got := len(KnownByProtocol("DNS")); got != 5 {
		t.Fatalf("DNS rows = %d, want 5", got)
	}
	if got := len(KnownByProtocol("DDS")); got != 0 {
		t.Fatalf("DDS rows = %d, want 0", got)
	}
}
