package bugs

// Known describes one of the 14 previously-unknown vulnerabilities from the
// paper's Table II. Each is seeded into the corresponding Go protocol
// subject, gated on the configuration + input condition the paper
// attributes to it, so campaigns can check which rows were rediscovered.
type Known struct {
	No       int
	Protocol string
	Kind     Kind
	Function string
}

// Table2 lists the paper's Table II verbatim. The Protocol column uses the
// protocol name (not the implementation) as the paper does.
var Table2 = []Known{
	{1, "MQTT", HeapUseAfterFree, "Connection::newMessage"},
	{2, "MQTT", HeapUseAfterFree, "neu_node_manager_get_addrs_all"},
	{3, "MQTT", HeapUseAfterFree, "mqtt_packet_destroy"},
	{4, "MQTT", SEGV, "loop_accepted"},
	{5, "MQTT", MemoryLeak, "multiple functions"},
	{6, "CoAP", SEGV, "coap_clean_options"},
	{7, "CoAP", StackBufferOverflow, "CoapPDU::getOptionDelta"},
	{8, "CoAP", SEGV, "coap_handle_request_put_block"},
	{9, "AMQP", StackBufferOverflow, "pthread_create"},
	{10, "DNS", StackBufferOverflow, "get16bits"},
	{11, "DNS", HeapBufferOverflow, "dns_question_parse, dns_request_parse"},
	{12, "DNS", AllocationSizeTooBig, "dns_request_parse"},
	{13, "DNS", HeapBufferOverflow, "printf_common"},
	{14, "DNS", HeapBufferOverflow, "config_parse"},
}

// LookupKnown matches a crash against Table II and returns the row, if any.
func LookupKnown(c *Crash) (Known, bool) {
	for _, k := range Table2 {
		if k.Protocol == c.Protocol && k.Kind == c.Kind && k.Function == c.Function {
			return k, true
		}
	}
	return Known{}, false
}

// KnownByProtocol returns the Table II rows for one protocol.
func KnownByProtocol(protocol string) []Known {
	var out []Known
	for _, k := range Table2 {
		if k.Protocol == protocol {
			out = append(out, k)
		}
	}
	return out
}
