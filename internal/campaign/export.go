package campaign

import (
	"encoding/json"
	"fmt"
	"strings"

	"cmfuzz/internal/coverage"
)

// Export bundles one evaluation's artifacts in a machine-readable form,
// so external tooling (plotting scripts, CI dashboards) can consume the
// reproduction without scraping the rendered tables.
type Export struct {
	Config  Config          `json:"config"`
	Table1  []Table1Row     `json:"table1,omitempty"`
	Figure4 []Figure4Series `json:"figure4,omitempty"`
	Table2  []Table2Export  `json:"table2,omitempty"`
}

// Table2Export is the JSON shape of one Table II row.
type Table2Export struct {
	No       int      `json:"no"`
	Protocol string   `json:"protocol"`
	Kind     string   `json:"kind"`
	Function string   `json:"function"`
	FoundBy  []string `json:"found_by,omitempty"`
	CMFuzzH  float64  `json:"cmfuzz_hours,omitempty"`
}

// NewTable2Export converts the runner's rows.
func NewTable2Export(rows []Table2Row) []Table2Export {
	out := make([]Table2Export, 0, len(rows))
	for _, r := range rows {
		e := Table2Export{
			No:       r.Known.No,
			Protocol: r.Known.Protocol,
			Kind:     r.Known.Kind.String(),
			Function: r.Known.Function,
			FoundBy:  r.FoundBy,
		}
		for _, f := range r.FoundBy {
			if f == "CMFuzz" {
				e.CMFuzzH = r.TimeSec / 3600
			}
		}
		out = append(out, e)
	}
	return out
}

// JSON renders the export with indentation.
func (e *Export) JSON() ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// Table1CSV renders Table I as CSV (header + one row per subject).
func Table1CSV(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("subject,cmfuzz,peach,improv_peach_pct,speedup_peach,spfuzz,improv_spfuzz_pct,speedup_spfuzz\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%.1f,%.1f,%d,%.1f,%.1f\n",
			r.Subject, r.CMFuzz, r.Peach, r.ImprovPeach, r.SpeedupPeach,
			r.SPFuzz, r.ImprovSPFuzz, r.SpeedupSPFuzz)
	}
	return b.String()
}

// Figure4CSV renders one subject's curves as CSV: time_hours followed by
// one column per fuzzer.
func Figure4CSV(f *Figure4Series) string {
	var b strings.Builder
	b.WriteString("time_hours,cmfuzz,peach,spfuzz\n")
	curves := [3][]coverage.Point{f.Points["CMFuzz"], f.Points["Peach"], f.Points["SPFuzz"]}
	n := 0
	for _, c := range curves {
		if len(c) > n {
			n = len(c)
		}
	}
	at := func(c []coverage.Point, i int) int {
		if i < len(c) {
			return c[i].Count
		}
		return 0
	}
	tAt := func(i int) float64 {
		for _, c := range curves {
			if i < len(c) {
				return c[i].T / 3600
			}
		}
		return 0
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%.2f,%d,%d,%d\n", tAt(i), at(curves[0], i), at(curves[1], i), at(curves[2], i))
	}
	return b.String()
}
