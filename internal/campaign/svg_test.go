package campaign

import (
	"encoding/xml"
	"strings"
	"testing"

	"cmfuzz/internal/coverage"
)

func sampleFigure() *Figure4Series {
	return &Figure4Series{
		Subject: "Dnsmasq",
		Hours:   24,
		Points: map[string][]coverage.Point{
			"CMFuzz": {{T: 0, Count: 100}, {T: 43200, Count: 1800}, {T: 86400, Count: 2200}},
			"Peach":  {{T: 0, Count: 40}, {T: 43200, Count: 1200}, {T: 86400, Count: 1380}},
			"SPFuzz": {{T: 0, Count: 40}, {T: 43200, Count: 1250}, {T: 86400, Count: 1400}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	out := sampleFigure().SVG(SVGOptions{})
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
	if c := strings.Count(out, "<polyline"); c != 3 {
		t.Fatalf("polylines = %d, want 3", c)
	}
	for _, want := range []string{"Dnsmasq", "CMFuzz", "Peach", "SPFuzz", "24h"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGCustomSize(t *testing.T) {
	out := sampleFigure().SVG(SVGOptions{Width: 200, Height: 100})
	if !strings.Contains(out, `width="200" height="100"`) {
		t.Fatal("custom size ignored")
	}
}

func TestSVGEmptyCurvesSafe(t *testing.T) {
	f := &Figure4Series{Subject: "Empty", Hours: 24, Points: map[string][]coverage.Point{}}
	out := f.SVG(SVGOptions{})
	if !strings.Contains(out, "</svg>") {
		t.Fatal("degenerate figure did not render")
	}
}
