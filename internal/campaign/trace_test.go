package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

// TestCampaignTraceAndProgress pins the matrix-level span structure — a
// campaign span containing one repetition child per (fuzzer, repetition)
// cell, each containing its instance spans — and the progress board's
// final shape after a full RunSubject matrix.
func TestCampaignTraceAndProgress(t *testing.T) {
	tr := trace.New()
	root := tr.Start("campaign-test")
	prog := telemetry.NewProgress()
	cfg := Config{Hours: 0.2, Repetitions: 2, Instances: 2, Trace: root, Progress: prog}
	if _, err := RunSubject(context.Background(), dnsSubject(t), cfg); err != nil {
		t.Fatal(err)
	}
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	var camp struct{ ts, end float64 }
	for _, ev := range doc.TraceEvents {
		count[ev.Name]++
		if ev.Name == "campaign" {
			camp.ts, camp.end = ev.Ts, ev.Ts+ev.Dur
		}
	}
	// 3 fuzzers × 2 repetitions, 2 instances each.
	if count["campaign"] != 1 || count["repetition"] != 6 || count["instance"] != 12 {
		t.Fatalf("span counts = %v, want campaign=1 repetition=6 instance=12", count)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name != "repetition" {
			continue
		}
		if ev.Ts < camp.ts || ev.Ts+ev.Dur > camp.end {
			t.Fatalf("repetition escapes campaign span: %+v", ev)
		}
		if _, ok := ev.Args["mode"]; !ok {
			t.Fatalf("repetition without mode attr: %v", ev.Args)
		}
	}

	snap := prog.Snapshot()
	if len(snap) != 6 {
		t.Fatalf("progress runs = %d, want 6", len(snap))
	}
	byLabel := map[string]telemetry.RunStatus{}
	for _, r := range snap {
		byLabel[r.Run] = r
		if !r.Done {
			t.Fatalf("run %q not marked done", r.Run)
		}
		if len(r.Instances) != 2 {
			t.Fatalf("run %q instances = %d", r.Run, len(r.Instances))
		}
		if r.VirtualSeconds != r.HorizonSeconds {
			t.Fatalf("run %q clock %.0f != horizon %.0f", r.Run, r.VirtualSeconds, r.HorizonSeconds)
		}
	}
	for _, want := range []string{"CMFuzz/rep0", "CMFuzz/rep1", "Peach/rep0", "SPFuzz/rep1"} {
		if _, ok := byLabel[want]; !ok {
			t.Fatalf("progress missing run %q; have %v", want, keys(byLabel))
		}
	}
	if prog.Running() != 0 {
		t.Fatalf("running = %d after matrix completed", prog.Running())
	}
}

func keys(m map[string]telemetry.RunStatus) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
