package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
)

func telSubject(t *testing.T, name string) subject.Subject {
	t.Helper()
	sub, err := protocols.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

// TestRunSubjectTelemetryConcurrencyInvariant asserts the merged event
// stream of a full fuzzer × repetition matrix is byte-identical whether
// the campaigns run sequentially or concurrently: children record in
// isolation and merge in fixed (fuzzer, repetition) order.
func TestRunSubjectTelemetryConcurrencyInvariant(t *testing.T) {
	stream := func(workers int) []byte {
		rec := telemetry.New()
		cfg := Config{Hours: 0.5, Repetitions: 2, Concurrency: workers, Telemetry: rec}
		if _, err := RunSubject(context.Background(), telSubject(t, "CoAP"), cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq, par := stream(1), stream(4)
	if len(seq) == 0 {
		t.Fatal("empty event stream")
	}
	if !bytes.Equal(seq, par) {
		t.Fatal("merged telemetry differs between Concurrency=1 and Concurrency=4")
	}
}

// TestWriteTelemetry checks the dropped artifacts: events.jsonl must
// round-trip through the parser and timeline.txt must mention every
// campaign run label.
func TestWriteTelemetry(t *testing.T) {
	rec := telemetry.New()
	cfg := Config{Hours: 0.5, Repetitions: 1, Telemetry: rec}
	if _, err := RunSubject(context.Background(), telSubject(t, "DNS"), cfg); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteTelemetry(dir, rec); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.ParseJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(rec.Events()) {
		t.Fatalf("parsed %d events, recorder has %d", len(events), len(rec.Events()))
	}
	tl, err := os.ReadFile(filepath.Join(dir, "timeline.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []string{"CMFuzz/rep0", "Peach/rep0", "SPFuzz/rep0"} {
		if !strings.Contains(string(tl), run) {
			t.Fatalf("timeline missing run %q:\n%s", run, tl)
		}
	}

	// A nil recorder must write nothing at all.
	empty := t.TempDir()
	if err := WriteTelemetry(empty, nil); err != nil {
		t.Fatal(err)
	}
	if entries, _ := os.ReadDir(empty); len(entries) != 0 {
		t.Fatal("nil recorder wrote artifacts")
	}
}
