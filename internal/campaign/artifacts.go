package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/telemetry"
)

// renameFile is swapped out by tests to inject atomic-commit failures.
var renameFile = os.Rename

// WriteFileAtomic writes data to path without ever exposing a partial
// file: the bytes go to a temp file in the same directory (same
// filesystem, so the rename cannot degrade to a copy) and the final
// name appears only via rename, which POSIX makes atomic. A crash —
// or an injected failure — between write and rename leaves any
// previous content of path intact; the temp file is removed on every
// failure path. The fleet service reads artifacts and checkpoints
// written by a coordinator that may be killed at any instant, so every
// artifact writer funnels through here.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := renameFile(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// WriteArtifacts persists one campaign's outcome the way a production
// fuzzer drops artifacts:
//
//	dir/
//	  result.json            summary (subject, mode, branches, instances)
//	  coverage.csv           the union coverage time series
//	  crashes/NN-<slug>.txt  one report per unique bug
//
// Every file is committed atomically (temp + rename), so a reader — or
// a restart scanning for completed campaigns — never sees a torn file.
func WriteArtifacts(dir string, res *parallel.Result) error {
	if err := os.MkdirAll(filepath.Join(dir, "crashes"), 0o755); err != nil {
		return err
	}

	summary := struct {
		Protocol       string                    `json:"protocol"`
		Implementation string                    `json:"implementation"`
		Mode           string                    `json:"mode"`
		FinalBranches  int                       `json:"final_branches"`
		TotalExecs     int                       `json:"total_execs"`
		UniqueBugs     int                       `json:"unique_bugs"`
		ModelEntities  int                       `json:"model_entities,omitempty"`
		RelationEdges  int                       `json:"relation_edges,omitempty"`
		Probes         int                       `json:"probes,omitempty"`
		Telemetry      telemetry.Counters        `json:"telemetry,omitempty"`
		Instances      []parallel.InstanceResult `json:"instances"`
	}{
		Protocol:       res.Subject.Protocol,
		Implementation: res.Subject.Implementation,
		Mode:           res.Mode.String(),
		FinalBranches:  res.FinalBranches,
		TotalExecs:     res.TotalExecs,
		UniqueBugs:     res.Bugs.Len(),
		ModelEntities:  res.ModelEntities,
		RelationEdges:  res.RelationEdges,
		Probes:         res.Probes,
		Telemetry:      res.Counters,
		Instances:      res.Instances,
	}
	raw, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	if err := WriteFileAtomic(filepath.Join(dir, "result.json"), raw, 0o644); err != nil {
		return err
	}

	var csv strings.Builder
	csv.WriteString("time_seconds,branches\n")
	for _, p := range res.Series.Points() {
		fmt.Fprintf(&csv, "%.1f,%d\n", p.T, p.Count)
	}
	if err := WriteFileAtomic(filepath.Join(dir, "coverage.csv"), []byte(csv.String()), 0o644); err != nil {
		return err
	}

	for i, rep := range res.Bugs.Unique() {
		if err := WriteFileAtomic(
			filepath.Join(dir, "crashes", fmt.Sprintf("%02d-%s.txt", i+1, crashSlug(&rep.Crash))),
			[]byte(renderCrash(rep)), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// WriteTelemetry drops a recorder's event stream next to the other
// artifacts: events.jsonl (the structured log) and timeline.txt (the
// per-instance ASCII summary). A nil recorder writes nothing.
func WriteTelemetry(dir string, rec *telemetry.Recorder) error {
	if !rec.Enabled() {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var events bytes.Buffer
	if err := rec.WriteJSONL(&events); err != nil {
		return err
	}
	if err := WriteFileAtomic(filepath.Join(dir, "events.jsonl"), events.Bytes(), 0o644); err != nil {
		return err
	}
	return WriteFileAtomic(filepath.Join(dir, "timeline.txt"), []byte(rec.Timeline(72)), 0o644)
}

func crashSlug(c *bugs.Crash) string {
	slug := strings.ToLower(c.Protocol + "-" + c.Function)
	var b strings.Builder
	for _, r := range slug {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

// renderCrash formats a report the way sanitizer triage notes look.
func renderCrash(rep bugs.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SUMMARY: %s in %s\n", rep.Crash.Kind, rep.Crash.Function)
	fmt.Fprintf(&b, "Protocol:  %s\n", rep.Crash.Protocol)
	fmt.Fprintf(&b, "Detail:    %s\n", rep.Crash.Detail)
	fmt.Fprintf(&b, "Found at:  %.1f virtual hours by instance %d\n", rep.Time/3600, rep.Instance)
	fmt.Fprintf(&b, "Hit count: %d\n", rep.Count)
	fmt.Fprintf(&b, "Config:    %s\n", rep.Config)
	if k, ok := bugs.LookupKnown(&rep.Crash); ok {
		fmt.Fprintf(&b, "Matches:   paper Table II row %d\n", k.No)
	}
	return b.String()
}
