// Package campaign is the evaluation harness: it runs repeated parallel
// fuzzing campaigns over the six subjects and regenerates every table and
// figure of the paper's evaluation section — Table I (branch coverage,
// improvement, speedup), Figure 4 (coverage-over-time curves) and
// Table II (previously-unknown bugs) — plus the design-choice ablations
// DESIGN.md calls out.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
	"cmfuzz/internal/dist"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/subject"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

// Config scales an evaluation run. The paper's full setting is 24 virtual
// hours × 5 repetitions × 4 instances; tests and quick benches shrink it.
type Config struct {
	// Hours is the virtual campaign length (default 24).
	Hours float64
	// Repetitions averages this many seeds (default 5, as in §IV).
	Repetitions int
	// Instances per fuzzer (default 4).
	Instances int
	// BaseSeed offsets the repetition seeds.
	BaseSeed int64
	// Concurrency bounds how many campaigns (fuzzer × repetition) run at
	// once and is passed through to each campaign's probe executor
	// (0 means GOMAXPROCS). Every campaign is deterministic per seed and
	// results are aggregated in fixed (fuzzer, repetition) order, so the
	// outcome is identical for any concurrency level.
	Concurrency int
	// Dist, when positive, runs each campaign through the distributed
	// coordinator/worker path (internal/dist) with this many in-process
	// loopback workers instead of calling parallel.Run directly. The
	// Result is byte-identical either way; the knob exists to exercise
	// the distributed machinery from the CLI and CI.
	Dist int
	// Telemetry collects the structured event streams of every campaign
	// in the run. Each (fuzzer, repetition) campaign records into its own
	// labeled child recorder and the children are merged in fixed
	// (fuzzer, repetition) order after the matrix completes, so the
	// merged export is deterministic for any Concurrency. Nil disables
	// collection at zero cost.
	Telemetry *telemetry.Recorder
	// Trace, when non-nil, is the parent wall-clock span: RunSubject
	// records a campaign span with one repetition child per (fuzzer,
	// repetition) cell, each carrying that campaign's instance spans.
	Trace *trace.Span
	// Progress, when non-nil, is the live board the HTTP monitor reads;
	// every campaign in the matrix reports into it under its run label.
	Progress *telemetry.Progress
	// Label names a single Run on the progress board (RunSubject sets
	// the per-cell "mode/repN" labels itself).
	Label string
}

func (c *Config) setDefaults() {
	if c.Hours == 0 {
		c.Hours = 24
	}
	if c.Repetitions == 0 {
		c.Repetitions = 5
	}
	if c.Instances == 0 {
		c.Instances = 4
	}
}

// Run executes one campaign (mode × subject × seed). With telemetry
// enabled, the campaign's event stream lands in cfg.Telemetry, bracketed
// by a campaign-level marker carrying the outcome.
func Run(ctx context.Context, sub subject.Subject, mode parallel.Mode, seed int64, cfg Config) (*parallel.Result, error) {
	cfg.setDefaults()
	opts := parallel.Options{
		Mode:         mode,
		Instances:    cfg.Instances,
		VirtualHours: cfg.Hours,
		Seed:         seed,
		Concurrency:  cfg.Concurrency,
		Telemetry:    cfg.Telemetry,
		Trace:        cfg.Trace,
		Progress:     cfg.Progress,
		Label:        cfg.Label,
	}
	var res *parallel.Result
	var err error
	if cfg.Dist > 0 {
		res, _, err = dist.RunLocal(ctx, sub, opts, cfg.Dist, dist.Config{})
	} else {
		res, err = parallel.Run(ctx, sub, opts)
	}
	if err == nil {
		cfg.Telemetry.Emit(telemetry.Event{
			T: cfg.Hours * 3600, Type: telemetry.EvCampaign, Instance: -1,
			Edges: res.FinalBranches,
			Detail: fmt.Sprintf("%s on %s seed %d: %d branches, %d execs, %d unique bugs",
				mode, sub.Info().Implementation, seed, res.FinalBranches, res.TotalExecs, res.Bugs.Len()),
		})
	}
	return res, err
}

// FuzzerStats aggregates one fuzzer's repetitions on one subject.
type FuzzerStats struct {
	Mode parallel.Mode
	// Branches is the mean final branch count across repetitions.
	Branches int
	// Series holds one coverage series per repetition.
	Series []*coverage.Series
	// Bugs is the union of unique bugs across repetitions.
	Bugs *bugs.Ledger
	// Execs is the mean total executions.
	Execs int
}

// SubjectResult aggregates all three fuzzers on one subject.
type SubjectResult struct {
	Subject subject.Info
	CMFuzz  FuzzerStats
	Peach   FuzzerStats
	SPFuzz  FuzzerStats
	Hours   float64
}

// RunSubject runs the three fuzzers × repetitions on one subject. The
// fuzzer × repetition matrix runs concurrently (bounded by
// Config.Concurrency); each campaign is deterministic per seed and the
// results are folded in fixed (fuzzer, repetition) order, so the output
// is identical to a sequential run.
func RunSubject(ctx context.Context, sub subject.Subject, cfg Config) (*SubjectResult, error) {
	cfg.setDefaults()
	res := &SubjectResult{Subject: sub.Info(), Hours: cfg.Hours}
	modes := []parallel.Mode{parallel.ModeCMFuzz, parallel.ModePeach, parallel.ModeSPFuzz}

	campSpan := cfg.Trace.Child("campaign",
		trace.A("subject", res.Subject.Protocol), trace.A("repetitions", cfg.Repetitions))
	defer campSpan.End()

	workers := cfg.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([][]*parallel.Result, len(modes))
	errs := make([][]error, len(modes))
	recorders := make([][]*telemetry.Recorder, len(modes))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for mi, mode := range modes {
		results[mi] = make([]*parallel.Result, cfg.Repetitions)
		errs[mi] = make([]error, cfg.Repetitions)
		recorders[mi] = make([]*telemetry.Recorder, cfg.Repetitions)
		for rep := 0; rep < cfg.Repetitions; rep++ {
			wg.Add(1)
			go func(mi, rep int, mode parallel.Mode) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				// Concurrent repetitions each record into their own
				// labeled child recorder; the children are merged below
				// in fixed order so the export is deterministic.
				repCfg := cfg
				label := fmt.Sprintf("%s/rep%d", mode, rep)
				if cfg.Telemetry.Enabled() {
					recorders[mi][rep] = telemetry.NewRun(label)
					repCfg.Telemetry = recorders[mi][rep]
				}
				repCfg.Label = label
				repCfg.Trace = campSpan.Child("repetition",
					trace.A("mode", mode.String()), trace.A("rep", rep))
				results[mi][rep], errs[mi][rep] = Run(ctx, sub, mode, cfg.BaseSeed+int64(rep)+1, repCfg)
				repCfg.Trace.End()
			}(mi, rep, mode)
		}
	}
	wg.Wait()
	for mi := range modes {
		for rep := 0; rep < cfg.Repetitions; rep++ {
			cfg.Telemetry.Merge(recorders[mi][rep])
		}
	}

	for mi, mode := range modes {
		stats := FuzzerStats{Mode: mode, Bugs: bugs.NewLedger()}
		sumBranches, sumExecs := 0, 0
		for rep := 0; rep < cfg.Repetitions; rep++ {
			if err := errs[mi][rep]; err != nil {
				return nil, fmt.Errorf("campaign: %s/%s rep %d: %w", res.Subject.Protocol, mode, rep, err)
			}
			r := results[mi][rep]
			sumBranches += r.FinalBranches
			sumExecs += r.TotalExecs
			stats.Series = append(stats.Series, r.Series)
			stats.Bugs.Merge(r.Bugs)
		}
		stats.Branches = sumBranches / cfg.Repetitions
		stats.Execs = sumExecs / cfg.Repetitions
		switch mode {
		case parallel.ModeCMFuzz:
			res.CMFuzz = stats
		case parallel.ModePeach:
			res.Peach = stats
		default:
			res.SPFuzz = stats
		}
	}
	return res, nil
}

// meanTimeToReach averages, across repetitions, the earliest virtual time
// each series reached count (series that never reach it contribute the
// horizon).
func meanTimeToReach(series []*coverage.Series, count int, horizon float64) float64 {
	if len(series) == 0 {
		return horizon
	}
	sum := 0.0
	for _, s := range series {
		t, ok := s.TimeToReach(count)
		if !ok {
			t = horizon
		}
		sum += t
	}
	return sum / float64(len(series))
}

// Speedup computes the paper's Table I metric: the baseline fuzzer's time
// to reach its final coverage divided by the time CMFuzz requires to
// reach that same coverage.
func (r *SubjectResult) Speedup(baseline FuzzerStats) float64 {
	horizon := r.Hours * 3600
	target := baseline.Branches
	tBase := meanTimeToReach(baseline.Series, target, horizon)
	tCM := meanTimeToReach(r.CMFuzz.Series, target, horizon)
	if tCM <= 0 {
		tCM = 1 // CMFuzz's startup configs already exceed the target
	}
	return tBase / tCM
}

// Improv computes CMFuzz's branch-coverage improvement over the baseline
// in percent.
func (r *SubjectResult) Improv(baseline FuzzerStats) float64 {
	if baseline.Branches == 0 {
		return 0
	}
	return 100 * (float64(r.CMFuzz.Branches)/float64(baseline.Branches) - 1)
}

// Table1Row is one line of Table I.
type Table1Row struct {
	Subject       string
	CMFuzz        int
	Peach         int
	ImprovPeach   float64
	SpeedupPeach  float64
	SPFuzz        int
	ImprovSPFuzz  float64
	SpeedupSPFuzz float64
}

// Table1 runs the full Table I experiment over the given subjects.
func Table1(ctx context.Context, subs []subject.Subject, cfg Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, sub := range subs {
		r, err := RunSubject(ctx, sub, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Subject:       r.Subject.Implementation,
			CMFuzz:        r.CMFuzz.Branches,
			Peach:         r.Peach.Branches,
			ImprovPeach:   r.Improv(r.Peach),
			SpeedupPeach:  r.Speedup(r.Peach),
			SPFuzz:        r.SPFuzz.Branches,
			ImprovSPFuzz:  r.Improv(r.SPFuzz),
			SpeedupSPFuzz: r.Speedup(r.SPFuzz),
		})
	}
	return rows, nil
}

// RenderTable1 formats Table I the way the paper prints it.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %9s %8s %8s %9s\n",
		"Subject", "CMFuzz", "Peach", "Improv", "Speedup", "SPFuzz", "Improv", "Speedup")
	sumIP, sumSP, sumIS, sumSS := 0.0, 0.0, 0.0, 0.0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %8d %+7.1f%% %8.0fx %8d %+7.1f%% %8.0fx\n",
			r.Subject, r.CMFuzz, r.Peach, r.ImprovPeach, r.SpeedupPeach,
			r.SPFuzz, r.ImprovSPFuzz, r.SpeedupSPFuzz)
		sumIP += r.ImprovPeach
		sumSP += r.SpeedupPeach
		sumIS += r.ImprovSPFuzz
		sumSS += r.SpeedupSPFuzz
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&b, "%-12s %8s %8s %+7.1f%% %8.0fx %8s %+7.1f%% %8.0fx\n",
			"AVERAGE", "", "", sumIP/n, sumSP/n, "", sumIS/n, sumSS/n)
	}
	return b.String()
}

// Figure4Series is one subject's averaged coverage-over-time curves.
type Figure4Series struct {
	Subject string
	Hours   float64
	// Points maps fuzzer name to its mean curve.
	Points map[string][]coverage.Point
}

// Figure4 produces the averaged coverage curves for one subject.
func Figure4(ctx context.Context, sub subject.Subject, cfg Config, samples int) (*Figure4Series, error) {
	cfg.setDefaults()
	r, err := RunSubject(ctx, sub, cfg)
	if err != nil {
		return nil, err
	}
	horizon := cfg.Hours * 3600
	return &Figure4Series{
		Subject: r.Subject.Implementation,
		Hours:   cfg.Hours,
		Points: map[string][]coverage.Point{
			"CMFuzz": coverage.MeanOf(r.CMFuzz.Series, horizon, samples),
			"Peach":  coverage.MeanOf(r.Peach.Series, horizon, samples),
			"SPFuzz": coverage.MeanOf(r.SPFuzz.Series, horizon, samples),
		},
	}, nil
}

// RenderFigure4 draws an ASCII version of one Figure 4 panel.
func RenderFigure4(f *Figure4Series, width, height int) string {
	maxCount := 1
	for _, pts := range f.Points {
		for _, p := range pts {
			if p.Count > maxCount {
				maxCount = p.Count
			}
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := map[string]byte{"CMFuzz": 'C', "Peach": 'P', "SPFuzz": 'S'}
	// Draw Peach and SPFuzz first so CMFuzz overwrites at overlaps.
	for _, name := range []string{"Peach", "SPFuzz", "CMFuzz"} {
		pts := f.Points[name]
		for i, p := range pts {
			x := i * (width - 1) / max(1, len(pts)-1)
			y := height - 1 - p.Count*(height-1)/maxCount
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[y][x] = marks[name]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — branches over %g virtual hours (max %d)\n", f.Subject, f.Hours, maxCount)
	for i, row := range grid {
		label := ""
		if i == 0 {
			label = fmt.Sprintf("%6d", maxCount)
		} else if i == height-1 {
			label = fmt.Sprintf("%6d", 0)
		} else {
			label = strings.Repeat(" ", 6)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "       +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        0h%sC=CMFuzz P=Peach S=SPFuzz%s%gh\n",
		strings.Repeat(" ", max(1, (width-30)/2)), strings.Repeat(" ", max(1, (width-32)/2)), f.Hours)
	return b.String()
}

// Table2Row is one line of the Table II reproduction: a known seeded bug
// and whether the campaign rediscovered it (and by which fuzzer).
type Table2Row struct {
	Known   bugs.Known
	FoundBy []string
	TimeSec float64 // earliest CMFuzz discovery time, if found
}

// Table2 runs CMFuzz (and the baselines, to confirm they miss the
// configuration-gated defects) and reports each Table II row.
func Table2(ctx context.Context, subs []subject.Subject, cfg Config) ([]Table2Row, error) {
	cfg.setDefaults()
	found := map[string]map[string]float64{} // crash id -> fuzzer -> time
	for _, sub := range subs {
		r, err := RunSubject(ctx, sub, cfg)
		if err != nil {
			return nil, err
		}
		for _, st := range []FuzzerStats{r.CMFuzz, r.Peach, r.SPFuzz} {
			for _, rep := range st.Bugs.Unique() {
				id := rep.Crash.ID()
				if found[id] == nil {
					found[id] = map[string]float64{}
				}
				if t, ok := found[id][st.Mode.String()]; !ok || rep.Time < t {
					found[id][st.Mode.String()] = rep.Time
				}
			}
		}
	}
	var rows []Table2Row
	for _, k := range bugs.Table2 {
		id := k.Protocol + "/" + k.Kind.String() + "/" + k.Function
		row := Table2Row{Known: k}
		if byFuzzer, ok := found[id]; ok {
			names := make([]string, 0, len(byFuzzer))
			for name := range byFuzzer {
				names = append(names, name)
			}
			sort.Strings(names)
			row.FoundBy = names
			if t, ok := byFuzzer["CMFuzz"]; ok {
				row.TimeSec = t
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 formats the Table II reproduction.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-9s %-24s %-38s %-18s %s\n",
		"No.", "Protocol", "Vulnerability Type", "Affected Function", "Found By", "CMFuzz t")
	foundCM := 0
	for _, r := range rows {
		foundBy := "-"
		if len(r.FoundBy) > 0 {
			foundBy = strings.Join(r.FoundBy, ",")
		}
		tstr := "-"
		for _, f := range r.FoundBy {
			if f == "CMFuzz" {
				foundCM++
				tstr = fmt.Sprintf("%.1fh", r.TimeSec/3600)
				break
			}
		}
		fmt.Fprintf(&b, "%-4d %-9s %-24s %-38s %-18s %s\n",
			r.Known.No, r.Known.Protocol, r.Known.Kind, r.Known.Function, foundBy, tstr)
	}
	fmt.Fprintf(&b, "CMFuzz rediscovered %d/%d previously-unknown bugs\n", foundCM, len(rows))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
