package campaign

import (
	"context"
	"strings"
	"testing"

	"cmfuzz/internal/coverage"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
)

// quick is a scaled-down evaluation config for tests.
var quick = Config{Hours: 1, Repetitions: 2, Instances: 4}

func dnsSubject(t *testing.T) subject.Subject {
	t.Helper()
	sub, err := protocols.ByName("DNS")
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestRunSubjectOrderingAndMetrics(t *testing.T) {
	r, err := RunSubject(context.Background(), dnsSubject(t), quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.CMFuzz.Branches <= r.Peach.Branches {
		t.Fatalf("CMFuzz %d <= Peach %d", r.CMFuzz.Branches, r.Peach.Branches)
	}
	if r.Improv(r.Peach) <= 0 {
		t.Fatalf("improvement over Peach = %v", r.Improv(r.Peach))
	}
	if s := r.Speedup(r.Peach); s < 1 {
		t.Fatalf("speedup vs Peach = %v, want >= 1", s)
	}
	if len(r.CMFuzz.Series) != quick.Repetitions {
		t.Fatalf("series count = %d", len(r.CMFuzz.Series))
	}
	if r.CMFuzz.Execs == 0 {
		t.Fatal("no executions recorded")
	}
}

func TestTable1RenderShape(t *testing.T) {
	rows, err := Table1(context.Background(), []subject.Subject{dnsSubject(t)}, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderTable1(rows)
	for _, want := range []string{"Dnsmasq", "CMFuzz", "Speedup", "AVERAGE"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4Monotone(t *testing.T) {
	f, err := Figure4(context.Background(), dnsSubject(t), quick, 24)
	if err != nil {
		t.Fatal(err)
	}
	for name, pts := range f.Points {
		if len(pts) != 24 {
			t.Fatalf("%s: %d samples", name, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Count < pts[i-1].Count {
				t.Fatalf("%s: curve decreases at %d", name, i)
			}
		}
		if pts[len(pts)-1].Count == 0 {
			t.Fatalf("%s: flat zero curve", name)
		}
	}
	art := RenderFigure4(f, 60, 12)
	if !strings.Contains(art, "C") || !strings.Contains(art, "P") {
		t.Fatalf("figure missing curves:\n%s", art)
	}
}

func TestTable2DNSRows(t *testing.T) {
	rows, err := Table2(context.Background(), []subject.Subject{dnsSubject(t)}, Config{Hours: 4, Repetitions: 2, Instances: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want all 14 Table II rows", len(rows))
	}
	foundDNS := 0
	for _, r := range rows {
		if r.Known.Protocol != "DNS" {
			continue
		}
		for _, f := range r.FoundBy {
			if f == "CMFuzz" {
				foundDNS++
			}
			if f == "Peach" || f == "SPFuzz" {
				t.Errorf("baseline found config-gated bug #%d", r.Known.No)
			}
		}
	}
	if foundDNS < 4 {
		t.Fatalf("CMFuzz found only %d/5 DNS bugs in 4h", foundDNS)
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "rediscovered") {
		t.Fatalf("render missing summary:\n%s", out)
	}
}

func TestAblationsCohesiveWins(t *testing.T) {
	rows, err := Ablations(context.Background(), []subject.Subject{dnsSubject(t)}, Config{Hours: 2, Repetitions: 2, Instances: 4})
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]int{}
	for _, r := range rows {
		byVariant[r.Variant] = r.Branches
	}
	full := byVariant["cmfuzz (full)"]
	if full == 0 {
		t.Fatal("full variant missing")
	}
	if peach := byVariant["peach"]; peach >= full {
		t.Fatalf("peach %d >= full CMFuzz %d", peach, full)
	}
	if noMut := byVariant["no-config-mutation"]; noMut > full {
		t.Logf("note: no-config-mutation %d > full %d (seed variance)", noMut, full)
	}
	out := RenderAblations(rows)
	if !strings.Contains(out, "alloc=random") {
		t.Fatalf("render missing variants:\n%s", out)
	}
}

func TestSpeedupDefinition(t *testing.T) {
	// Construct a synthetic result: baseline reaches 100 at t=1000;
	// CMFuzz reaches 100 at t=10 → speedup 100×.
	var bs, cs coverage.Series
	bs.Observe(1000, 100)
	cs.Observe(10, 100)
	r := &SubjectResult{Hours: 1}
	base := FuzzerStats{Branches: 100, Series: []*coverage.Series{&bs}}
	r.CMFuzz.Series = []*coverage.Series{&cs}
	if s := r.Speedup(base); s < 99 || s > 101 {
		t.Fatalf("speedup = %v, want ~100", s)
	}
}

func TestRunModesSmoke(t *testing.T) {
	sub := dnsSubject(t)
	for _, mode := range []parallel.Mode{parallel.ModeCMFuzz, parallel.ModePeach, parallel.ModeSPFuzz} {
		r, err := Run(context.Background(), sub, mode, 1, Config{Hours: 0.5, Repetitions: 1})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.FinalBranches == 0 {
			t.Fatalf("%s: zero coverage", mode)
		}
	}
}

// TestRunSubjectIdenticalAcrossConcurrency asserts the concurrent
// mode x repetition matrix in RunSubject produces exactly the results
// of a sequential run: every repetition keeps its own seed, so the
// per-mode aggregates must not depend on the worker count.
func TestRunSubjectIdenticalAcrossConcurrency(t *testing.T) {
	sub := dnsSubject(t)
	cfg := Config{Hours: 0.5, Repetitions: 2, Instances: 4}

	seq := cfg
	seq.Concurrency = 1
	base, err := RunSubject(context.Background(), sub, seq)
	if err != nil {
		t.Fatal(err)
	}
	par := cfg
	par.Concurrency = 4
	got, err := RunSubject(context.Background(), sub, par)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []struct {
		name       string
		base, goot FuzzerStats
	}{
		{"cmfuzz", base.CMFuzz, got.CMFuzz},
		{"peach", base.Peach, got.Peach},
		{"spfuzz", base.SPFuzz, got.SPFuzz},
	} {
		if m.base.Branches != m.goot.Branches {
			t.Fatalf("%s: branches %d vs %d", m.name, m.goot.Branches, m.base.Branches)
		}
		if len(m.base.Series) != len(m.goot.Series) {
			t.Fatalf("%s: series count %d vs %d", m.name, len(m.goot.Series), len(m.base.Series))
		}
		for i := range m.base.Series {
			bp, gp := m.base.Series[i].Points(), m.goot.Series[i].Points()
			if len(bp) != len(gp) {
				t.Fatalf("%s rep %d: %d vs %d points", m.name, i, len(gp), len(bp))
			}
			for j := range bp {
				if bp[j] != gp[j] {
					t.Fatalf("%s rep %d point %d: %+v vs %+v", m.name, i, j, gp[j], bp[j])
				}
			}
		}
	}
}
