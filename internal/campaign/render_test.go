package campaign

import (
	"strings"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
)

func TestMeanTimeToReach(t *testing.T) {
	var a, b coverage.Series
	a.Observe(10, 100)
	b.Observe(30, 100)
	got := meanTimeToReach([]*coverage.Series{&a, &b}, 100, 3600)
	if got != 20 {
		t.Fatalf("mean = %v, want 20", got)
	}
	// A series that never reaches the target contributes the horizon.
	var c coverage.Series
	c.Observe(10, 50)
	got = meanTimeToReach([]*coverage.Series{&a, &c}, 100, 1000)
	if got != (10+1000)/2 {
		t.Fatalf("mean with miss = %v", got)
	}
	if meanTimeToReach(nil, 5, 777) != 777 {
		t.Fatal("empty series should yield horizon")
	}
}

func TestRenderFigure4Degenerate(t *testing.T) {
	f := &Figure4Series{
		Subject: "Empty",
		Hours:   24,
		Points: map[string][]coverage.Point{
			"CMFuzz": {{T: 0, Count: 0}, {T: 86400, Count: 0}},
			"Peach":  {{T: 0, Count: 0}, {T: 86400, Count: 0}},
			"SPFuzz": {{T: 0, Count: 0}, {T: 86400, Count: 0}},
		},
	}
	out := RenderFigure4(f, 40, 8) // must not divide by zero
	if !strings.Contains(out, "Empty") {
		t.Fatal("render lost subject name")
	}
}

func TestRenderTable2NoFindings(t *testing.T) {
	rows := []Table2Row{{Known: bugs.Table2[0]}}
	out := RenderTable2(rows)
	if !strings.Contains(out, "rediscovered 0/1") {
		t.Fatalf("summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "Connection::newMessage") {
		t.Fatal("row missing")
	}
}

func TestRenderTable1Empty(t *testing.T) {
	out := RenderTable1(nil)
	if !strings.Contains(out, "Subject") {
		t.Fatal("header missing")
	}
	if strings.Contains(out, "AVERAGE") {
		t.Fatal("average printed for empty table")
	}
}

func TestImprovZeroBaseline(t *testing.T) {
	r := &SubjectResult{}
	r.CMFuzz.Branches = 100
	if got := r.Improv(FuzzerStats{Branches: 0}); got != 0 {
		t.Fatalf("Improv with zero baseline = %v", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.Hours != 24 || c.Repetitions != 5 || c.Instances != 4 {
		t.Fatalf("defaults = %+v", c)
	}
}
