package campaign

import (
	"fmt"
	"strings"
)

// SVGOptions sizes a rendered figure.
type SVGOptions struct {
	Width, Height int // canvas size in px (defaults 640×360)
}

// SVG renders one Figure 4 panel as a standalone SVG line chart with the
// three fuzzer curves, axes and a legend — the publishable counterpart of
// RenderFigure4's ASCII art.
func (f *Figure4Series) SVG(opts SVGOptions) string {
	w, h := opts.Width, opts.Height
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 360
	}
	const marginL, marginR, marginT, marginB = 56, 16, 28, 40
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB

	maxCount := 1
	for _, pts := range f.Points {
		for _, p := range pts {
			if p.Count > maxCount {
				maxCount = p.Count
			}
		}
	}
	horizon := f.Hours * 3600
	if horizon <= 0 {
		horizon = 1
	}

	x := func(t float64) float64 { return float64(marginL) + t/horizon*float64(plotW) }
	y := func(c int) float64 {
		return float64(marginT) + (1-float64(c)/float64(maxCount))*float64(plotH)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-family="sans-serif" font-size="14" font-weight="bold">%s — branches over %g virtual hours</text>`+"\n",
		marginL, f.Subject, f.Hours)

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	// Y ticks: 0, max/2, max.
	for _, c := range []int{0, maxCount / 2, maxCount} {
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" font-family="sans-serif" font-size="10" text-anchor="end">%d</text>`+"\n",
			marginL-6, y(c)+3, c)
	}
	// X ticks: 0h, 6h, 12h, 18h, horizon.
	for i := 0; i <= 4; i++ {
		t := horizon * float64(i) / 4
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%gh</text>`+"\n",
			x(t), marginT+plotH+16, f.Hours*float64(i)/4)
	}

	colors := map[string]string{"CMFuzz": "#c0392b", "Peach": "#2980b9", "SPFuzz": "#27ae60"}
	order := []string{"Peach", "SPFuzz", "CMFuzz"}
	for _, name := range order {
		pts := f.Points[name]
		if len(pts) == 0 {
			continue
		}
		var poly []string
		for _, p := range pts {
			poly = append(poly, fmt.Sprintf("%.1f,%.1f", x(p.T), y(p.Count)))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
			colors[name], strings.Join(poly, " "))
	}
	// Legend.
	lx := marginL + 10
	for i, name := range []string{"CMFuzz", "Peach", "SPFuzz"} {
		ly := marginT + 14 + i*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+22, ly, colors[name])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+28, ly+4, name)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
