package campaign

import (
	"encoding/json"
	"strings"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
)

func TestExportJSON(t *testing.T) {
	e := &Export{
		Config: Config{Hours: 24, Repetitions: 5, Instances: 4},
		Table1: []Table1Row{{Subject: "Dnsmasq", CMFuzz: 2212, Peach: 1377, ImprovPeach: 60.6}},
		Table2: NewTable2Export([]Table2Row{
			{Known: bugs.Table2[9], FoundBy: []string{"CMFuzz"}, TimeSec: 7200},
			{Known: bugs.Table2[0]},
		}),
	}
	raw, err := e.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Table1[0].CMFuzz != 2212 {
		t.Fatalf("round trip lost data: %+v", back.Table1)
	}
	if back.Table2[0].CMFuzzH != 2 {
		t.Fatalf("discovery hours = %v", back.Table2[0].CMFuzzH)
	}
	if len(back.Table2[1].FoundBy) != 0 {
		t.Fatal("unfound row has finders")
	}
}

func TestTable1CSV(t *testing.T) {
	csv := Table1CSV([]Table1Row{{Subject: "Mosquitto", CMFuzz: 8354, Peach: 5255, ImprovPeach: 59.0, SpeedupPeach: 9}})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "Mosquitto,8354,5255,59.0,9.0") {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestFigure4CSV(t *testing.T) {
	f := &Figure4Series{
		Subject: "X",
		Points: map[string][]coverage.Point{
			"CMFuzz": {{T: 0, Count: 1}, {T: 3600, Count: 5}},
			"Peach":  {{T: 0, Count: 1}, {T: 3600, Count: 3}},
			"SPFuzz": {{T: 0, Count: 1}, {T: 3600, Count: 4}},
		},
	}
	csv := Figure4CSV(f)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[2] != "1.00,5,3,4" {
		t.Fatalf("row = %q", lines[2])
	}
}
