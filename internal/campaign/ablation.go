package campaign

import (
	"context"
	"fmt"
	"strings"

	"cmfuzz/internal/parallel"
	"cmfuzz/internal/subject"
)

// AblationRow compares one CMFuzz design choice against its alternatives
// on one subject.
type AblationRow struct {
	Subject  string
	Variant  string
	Branches int
	Bugs     int
}

// Ablations runs the design-choice ablations DESIGN.md calls out on the
// given subjects:
//
//   - allocation strategy: Algorithm 2's cohesive grouping vs random and
//     round-robin dealing;
//   - adaptive configuration-value mutation: on vs off;
//   - relation weighting: interaction gain vs the paper-literal raw
//     startup coverage;
//   - Peach schedule redundancy: independent vs pairwise-shared workers.
func Ablations(ctx context.Context, subs []subject.Subject, cfg Config) ([]AblationRow, error) {
	cfg.setDefaults()
	variants := []struct {
		name string
		opts func(parallel.Options) parallel.Options
	}{
		{"cmfuzz (full)", func(o parallel.Options) parallel.Options { return o }},
		{"alloc=random", func(o parallel.Options) parallel.Options { o.Allocator = parallel.AllocRandom; return o }},
		{"alloc=round-robin", func(o parallel.Options) parallel.Options { o.Allocator = parallel.AllocRoundRobin; return o }},
		{"no-config-mutation", func(o parallel.Options) parallel.Options { o.DisableConfigMutation = true; return o }},
		{"weight=raw-coverage", func(o parallel.Options) parallel.Options { o.RawRelationWeighting = true; return o }},
		{"peach", func(o parallel.Options) parallel.Options { o.Mode = parallel.ModePeach; return o }},
		{"peach-shared-sched", func(o parallel.Options) parallel.Options {
			o.Mode = parallel.ModePeach
			o.PeachSharedSchedules = true
			return o
		}},
	}
	var rows []AblationRow
	for _, sub := range subs {
		for _, v := range variants {
			sumBranches, sumBugs := 0, 0
			for rep := 0; rep < cfg.Repetitions; rep++ {
				opts := v.opts(parallel.Options{
					Mode:         parallel.ModeCMFuzz,
					Instances:    cfg.Instances,
					VirtualHours: cfg.Hours,
					Seed:         cfg.BaseSeed + int64(rep) + 1,
				})
				r, err := parallel.Run(ctx, sub, opts)
				if err != nil {
					return nil, fmt.Errorf("campaign: ablation %s/%s: %w", sub.Info().Protocol, v.name, err)
				}
				sumBranches += r.FinalBranches
				sumBugs += r.Bugs.Len()
			}
			rows = append(rows, AblationRow{
				Subject:  sub.Info().Implementation,
				Variant:  v.name,
				Branches: sumBranches / cfg.Repetitions,
				Bugs:     sumBugs / cfg.Repetitions,
			})
		}
	}
	return rows, nil
}

// RenderAblations formats the ablation table.
func RenderAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-20s %9s %5s\n", "Subject", "Variant", "Branches", "Bugs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-20s %9d %5d\n", r.Subject, r.Variant, r.Branches, r.Bugs)
	}
	return b.String()
}
