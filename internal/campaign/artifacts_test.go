package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
)

func TestWriteArtifacts(t *testing.T) {
	sub, _ := protocols.ByName("DNS")
	res, err := parallel.Run(context.Background(), sub, parallel.Options{Mode: parallel.ModeCMFuzz, VirtualHours: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteArtifacts(dir, res); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	var summary map[string]any
	if err := json.Unmarshal(raw, &summary); err != nil {
		t.Fatal(err)
	}
	if summary["protocol"] != "DNS" || summary["mode"] != "CMFuzz" {
		t.Fatalf("summary = %v", summary)
	}

	csv, err := os.ReadFile(filepath.Join(dir, "coverage.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(csv), "\n"); lines < 3 {
		t.Fatalf("coverage.csv too short: %d lines", lines)
	}

	crashes, err := os.ReadDir(filepath.Join(dir, "crashes"))
	if err != nil {
		t.Fatal(err)
	}
	if len(crashes) != res.Bugs.Len() {
		t.Fatalf("crash files = %d, bugs = %d", len(crashes), res.Bugs.Len())
	}
	if res.Bugs.Len() > 0 {
		body, _ := os.ReadFile(filepath.Join(dir, "crashes", crashes[0].Name()))
		for _, want := range []string{"SUMMARY:", "Config:", "Table II row"} {
			if !strings.Contains(string(body), want) {
				t.Errorf("crash report missing %q:\n%s", want, body)
			}
		}
	}
}

func TestCrashSlug(t *testing.T) {
	c := &bugs.Crash{Protocol: "MQTT", Function: "Connection::newMessage"}
	if got := crashSlug(c); got != "mqtt-connection--newmessage" {
		t.Errorf("slug = %q", got)
	}
	c2 := &bugs.Crash{Protocol: "DNS", Function: "dns_question_parse, dns_request_parse"}
	if got := crashSlug(c2); strings.ContainsAny(got, " ,_") {
		t.Errorf("slug not sanitized: %q", got)
	}
}
