package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/parallel"
	"cmfuzz/internal/protocols"
)

func TestWriteArtifacts(t *testing.T) {
	sub, _ := protocols.ByName("DNS")
	res, err := parallel.Run(context.Background(), sub, parallel.Options{Mode: parallel.ModeCMFuzz, VirtualHours: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteArtifacts(dir, res); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	var summary map[string]any
	if err := json.Unmarshal(raw, &summary); err != nil {
		t.Fatal(err)
	}
	if summary["protocol"] != "DNS" || summary["mode"] != "CMFuzz" {
		t.Fatalf("summary = %v", summary)
	}

	csv, err := os.ReadFile(filepath.Join(dir, "coverage.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(csv), "\n"); lines < 3 {
		t.Fatalf("coverage.csv too short: %d lines", lines)
	}

	crashes, err := os.ReadDir(filepath.Join(dir, "crashes"))
	if err != nil {
		t.Fatal(err)
	}
	if len(crashes) != res.Bugs.Len() {
		t.Fatalf("crash files = %d, bugs = %d", len(crashes), res.Bugs.Len())
	}
	if res.Bugs.Len() > 0 {
		body, _ := os.ReadFile(filepath.Join(dir, "crashes", crashes[0].Name()))
		for _, want := range []string{"SUMMARY:", "Config:", "Table II row"} {
			if !strings.Contains(string(body), want) {
				t.Errorf("crash report missing %q:\n%s", want, body)
			}
		}
	}
}

func TestCrashSlug(t *testing.T) {
	c := &bugs.Crash{Protocol: "MQTT", Function: "Connection::newMessage"}
	if got := crashSlug(c); got != "mqtt-connection--newmessage" {
		t.Errorf("slug = %q", got)
	}
	c2 := &bugs.Crash{Protocol: "DNS", Function: "dns_question_parse, dns_request_parse"}
	if got := crashSlug(c2); strings.ContainsAny(got, " ,_") {
		t.Errorf("slug not sanitized: %q", got)
	}
}

// TestWriteFileAtomicFailureKeepsOldContent pins the atomic-commit
// contract: when the final rename fails (simulating a crash or a full
// disk at the commit point), the previous file content survives intact
// and no temp file is left behind — a half-written artifact must never
// shadow a good one.
func TestWriteFileAtomicFailureKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "result.json")
	if err := WriteFileAtomic(path, []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}

	failErr := errors.New("injected rename failure")
	renameFile = func(oldpath, newpath string) error { return failErr }
	defer func() { renameFile = os.Rename }()

	if err := WriteFileAtomic(path, []byte("torn"), 0o644); !errors.Is(err, failErr) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("old content clobbered: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("stray files after failed write: %v", names)
	}

	renameFile = os.Rename
	if err := WriteFileAtomic(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "new" {
		t.Fatalf("recovered write = %q, want %q", got, "new")
	}
}
