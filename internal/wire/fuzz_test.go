package wire

import (
	"bytes"
	"testing"
)

// The distributed campaign protocol frames every message with these
// primitives, so they face bytes straight off a socket. Each fuzz target
// pins two properties: decode(encode(x)) == x for values the writer can
// produce, and arbitrary input never panics — it either parses or fails
// with the sticky error.

func FuzzVarintRoundTrip(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(127))
	f.Add(uint32(128))
	f.Add(uint32(16383))
	f.Add(uint32(16384))
	f.Add(uint32(268435455))
	f.Add(uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, v uint32) {
		w := &Writer{}
		w.Varint(v)
		r := NewReader(w.Bytes())
		got := r.Varint()
		if r.Err() != nil {
			t.Fatalf("self-encoded varint failed to parse: %v", r.Err())
		}
		want := v
		if want > 268435455 {
			want = 268435455 // writer clamps to the 4-byte MQTT max
		}
		if got != want {
			t.Fatalf("varint round-trip: wrote %d, read %d", want, got)
		}
		if r.Remaining() != 0 {
			t.Fatalf("varint left %d bytes unread", r.Remaining())
		}
	})
}

func FuzzVarintNoPanic(f *testing.F) {
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x01}) // over-long
	f.Add([]byte{0xff})                         // truncated continuation
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		v := r.Varint()
		if r.Err() != nil && v != 0 {
			t.Fatalf("failed read returned nonzero value %d", v)
		}
		if r.Err() == nil && r.Pos() > len(data) {
			t.Fatalf("cursor %d past input %d", r.Pos(), len(data))
		}
	})
}

func FuzzLengthPrefixedRoundTrip(f *testing.F) {
	f.Add([]byte(nil), "")
	f.Add([]byte{1, 2, 3}, "hello")
	f.Add(bytes.Repeat([]byte{0xaa}, 70000), "x") // beyond the u16 range
	f.Fuzz(func(t *testing.T, blob []byte, s string) {
		w := &Writer{}
		w.Bytes16(blob)
		w.String16(s)
		w.Bytes32(blob)
		w.String32(s)
		r := NewReader(w.Bytes())
		b16 := r.Bytes16()
		s16 := r.String16()
		b32 := r.Bytes32()
		s32 := r.String32()
		if r.Err() != nil {
			t.Fatalf("self-encoded fields failed to parse: %v", r.Err())
		}
		want16 := blob
		if len(want16) > 0xffff {
			want16 = want16[:0xffff] // Bytes16 truncates to fit its prefix
		}
		wantS16 := s
		if len(wantS16) > 0xffff {
			wantS16 = wantS16[:0xffff]
		}
		if !bytes.Equal(b16, want16) || s16 != wantS16 {
			t.Fatal("u16-prefixed round-trip mismatch")
		}
		if !bytes.Equal(b32, blob) || s32 != s {
			t.Fatal("u32-prefixed round-trip mismatch")
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left unread", r.Remaining())
		}
	})
}

// FuzzReaderGauntlet drives every reader primitive over arbitrary input.
// Nothing may panic, no read may move the cursor backwards or past the
// end, and once the sticky error fires every later read returns zeros.
func FuzzReaderGauntlet(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		prev := 0
		check := func() {
			if r.Pos() < prev || r.Pos() > len(data) {
				t.Fatalf("cursor moved from %d to %d (len %d)", prev, r.Pos(), len(data))
			}
			prev = r.Pos()
		}
		r.U8()
		check()
		r.U16()
		check()
		r.U32()
		check()
		r.U64()
		check()
		r.U16LE()
		check()
		r.U32LE()
		check()
		r.Varint()
		check()
		r.Bytes16()
		check()
		r.Bytes32()
		check()
		r.Peek()
		check()
		r.Skip(3)
		check()
		failedAt := r.Err() != nil
		if failedAt {
			if r.U32() != 0 || r.Bytes32() != nil || r.String16() != "" {
				t.Fatal("reads after sticky error returned data")
			}
		}
		r.Rest()
		if r.Err() == nil && r.Remaining() != 0 {
			t.Fatalf("Rest left %d bytes", r.Remaining())
		}
	})
}

func TestBytes32Truncated(t *testing.T) {
	// A huge length prefix over a short body must fail cleanly, without
	// allocating the advertised size.
	r := NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	if b := r.Bytes32(); b != nil || r.Err() != ErrTruncated {
		t.Fatalf("got %v err %v, want nil/ErrTruncated", b, r.Err())
	}
}
