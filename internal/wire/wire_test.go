package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestReaderPrimitives(t *testing.T) {
	data := []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}
	r := NewReader(data)
	if got := r.U8(); got != 0x01 {
		t.Fatalf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0x0203 {
		t.Fatalf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0x04050607 {
		t.Fatalf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x08090a0b0c0d0e0f {
		t.Fatalf("U64 = %#x", got)
	}
	if !r.Empty() {
		t.Fatal("reader should be empty")
	}
	if r.Err() != nil {
		t.Fatalf("unexpected err: %v", r.Err())
	}
}

func TestReaderLittleEndian(t *testing.T) {
	r := NewReader([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	if got := r.U16LE(); got != 0x0201 {
		t.Fatalf("U16LE = %#x", got)
	}
	if got := r.U32LE(); got != 0x06050403 {
		t.Fatalf("U32LE = %#x", got)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x01})
	_ = r.U32() // truncated
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
	if got := r.U8(); got != 0 {
		t.Fatalf("read after error = %#x, want 0", got)
	}
	if r.Rest() != nil {
		t.Fatal("Rest after error should be nil")
	}
}

func TestReaderBytesAndRest(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4, 5})
	if got := r.Bytes(2); !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := r.Rest(); !bytes.Equal(got, []byte{3, 4, 5}) {
		t.Fatalf("Rest = %v", got)
	}
	if r.Remaining() != 0 {
		t.Fatal("Remaining != 0 after Rest")
	}
}

func TestReaderBytesNegative(t *testing.T) {
	r := NewReader([]byte{1})
	if r.Bytes(-1) != nil || !errors.Is(r.Err(), ErrMalformed) {
		t.Fatal("negative Bytes should fail with ErrMalformed")
	}
}

func TestReaderSkipPeek(t *testing.T) {
	r := NewReader([]byte{9, 8, 7})
	if r.Peek() != 9 {
		t.Fatal("Peek wrong")
	}
	r.Skip(2)
	if r.Peek() != 7 || r.Pos() != 2 {
		t.Fatal("Skip wrong")
	}
	r.Skip(5)
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatal("over-skip should fail")
	}
	var r2 Reader
	r2.Skip(-1)
	if !errors.Is(r2.Err(), ErrMalformed) {
		t.Fatal("negative skip should fail")
	}
}

func TestReaderFail(t *testing.T) {
	r := NewReader([]byte{1})
	custom := errors.New("bad option")
	r.Fail(custom)
	r.Fail(errors.New("second")) // first sticks
	if r.Err() != custom {
		t.Fatalf("Err = %v, want first failure", r.Err())
	}
}

func TestVarintRoundTrip(t *testing.T) {
	for _, v := range []uint32{0, 1, 127, 128, 16383, 16384, 2097151, 2097152, 268435455} {
		var w Writer
		w.Varint(v)
		r := NewReader(w.Bytes())
		if got := r.Varint(); got != v || r.Err() != nil {
			t.Errorf("varint %d round-tripped to %d (err %v)", v, got, r.Err())
		}
	}
}

func TestVarintMalformed(t *testing.T) {
	// 5 continuation bytes exceed the 4-byte MQTT limit.
	r := NewReader([]byte{0x80, 0x80, 0x80, 0x80, 0x01})
	_ = r.Varint()
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", r.Err())
	}
	// Truncated continuation.
	r2 := NewReader([]byte{0x80})
	_ = r2.Varint()
	if !errors.Is(r2.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r2.Err())
	}
}

func TestVarintClampsOversize(t *testing.T) {
	var w Writer
	w.Varint(1 << 31)
	r := NewReader(w.Bytes())
	if got := r.Varint(); got != 268435455 {
		t.Fatalf("oversize varint decoded to %d, want clamp to max", got)
	}
}

func TestString16RoundTrip(t *testing.T) {
	var w Writer
	w.String16("hello")
	w.String16("")
	r := NewReader(w.Bytes())
	if got := r.String16(); got != "hello" {
		t.Fatalf("String16 = %q", got)
	}
	if got := r.String16(); got != "" {
		t.Fatalf("empty String16 = %q", got)
	}
	if r.Err() != nil || !r.Empty() {
		t.Fatal("leftover state after round trip")
	}
}

func TestBytes16Truncation(t *testing.T) {
	var w Writer
	big := make([]byte, 0x10002)
	w.Bytes16(big)
	r := NewReader(w.Bytes())
	if got := r.Bytes16(); len(got) != 0xffff {
		t.Fatalf("oversize Bytes16 len = %d, want 65535", len(got))
	}
}

func TestWriterPrimitives(t *testing.T) {
	w := NewWriter(16)
	w.U8(0x01)
	w.U16(0x0203)
	w.U32(0x04050607)
	w.U64(0x08090a0b0c0d0e0f)
	w.U16LE(0x0201)
	w.U32LE(0x04030201)
	want := []byte{
		0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
		0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
		0x01, 0x02,
		0x01, 0x02, 0x03, 0x04,
	}
	if !bytes.Equal(w.Bytes(), want) {
		t.Fatalf("writer output = %x, want %x", w.Bytes(), want)
	}
	if w.Len() != len(want) {
		t.Fatalf("Len = %d", w.Len())
	}
}

// Property: any sequence written with Writer primitives reads back intact.
func TestQuickWriterReaderRoundTrip(t *testing.T) {
	f := func(a byte, b uint16, c uint32, d uint64, s string, raw []byte) bool {
		var w Writer
		w.U8(a)
		w.U16(b)
		w.U32(c)
		w.U64(d)
		w.String16(s)
		w.Bytes16(raw)
		r := NewReader(w.Bytes())
		okStr := s
		if len(okStr) > 0xffff {
			okStr = okStr[:0xffff]
		}
		okRaw := raw
		if len(okRaw) > 0xffff {
			okRaw = okRaw[:0xffff]
		}
		return r.U8() == a && r.U16() == b && r.U32() == c && r.U64() == d &&
			r.String16() == okStr && bytes.Equal(r.Bytes16(), append([]byte{}, okRaw...)) &&
			r.Err() == nil && r.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Reader never panics and never reads past input on arbitrary bytes.
func TestQuickReaderRobust(t *testing.T) {
	f := func(data []byte, ops []uint8) bool {
		r := NewReader(data)
		for _, op := range ops {
			switch op % 10 {
			case 0:
				r.U8()
			case 1:
				r.U16()
			case 2:
				r.U32()
			case 3:
				r.U64()
			case 4:
				r.Varint()
			case 5:
				r.Bytes(int(op))
			case 6:
				r.Bytes16()
			case 7:
				r.Skip(int(op % 5))
			case 8:
				r.Peek()
			case 9:
				r.String16()
			}
		}
		return r.Pos() <= len(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(4)
	w.U32(0xDEADBEEF)
	w.String16("hello")
	grown := cap(w.Bytes())
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("len after Reset = %d, want 0", w.Len())
	}
	if cap(w.Bytes()) != grown {
		t.Fatalf("Reset dropped capacity: %d, want %d", cap(w.Bytes()), grown)
	}
	w.U8(7)
	if got := w.Bytes(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("write after Reset = %v, want [7]", got)
	}
}
