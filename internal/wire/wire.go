// Package wire is the binary codec toolkit shared by the protocol
// subjects. It provides a cursored reader with a sticky error (so parsers
// read field-by-field without per-call error plumbing, then check once)
// and a growing writer, with the big-endian primitives, length-prefixed
// fields, and MQTT-style variable-byte integers the IoT protocols need.
package wire

import "errors"

// ErrTruncated reports a read past the end of the input.
var ErrTruncated = errors.New("wire: truncated input")

// ErrMalformed reports a structurally invalid field (for example an
// over-long variable-byte integer).
var ErrMalformed = errors.New("wire: malformed field")

// A Reader decodes binary fields from a byte slice. The first failure
// sticks: every subsequent read returns zero values, and Err exposes the
// failure. The zero value reads from an empty input.
type Reader struct {
	data []byte
	pos  int
	err  error
}

// NewReader returns a Reader over data. The Reader does not copy data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Fail forces the reader into the error state with err (if it is not
// already failed). Parsers use it to flag semantic violations.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Pos returns the current cursor offset.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns how many bytes are left to read.
func (r *Reader) Remaining() int { return len(r.data) - r.pos }

// Empty reports whether all input has been consumed (or the reader failed).
func (r *Reader) Empty() bool { return r.err != nil || r.pos >= len(r.data) }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < n {
		r.err = ErrTruncated
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	if !r.need(1) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := uint16(r.data[r.pos])<<8 | uint16(r.data[r.pos+1])
	r.pos += 2
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	d := r.data[r.pos:]
	v := uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3])
	r.pos += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(r.data[r.pos+i])
	}
	r.pos += 8
	return v
}

// U16LE reads a little-endian uint16 (RTPS uses little-endian encodings).
func (r *Reader) U16LE() uint16 {
	if !r.need(2) {
		return 0
	}
	v := uint16(r.data[r.pos]) | uint16(r.data[r.pos+1])<<8
	r.pos += 2
	return v
}

// U32LE reads a little-endian uint32.
func (r *Reader) U32LE() uint32 {
	if !r.need(4) {
		return 0
	}
	d := r.data[r.pos:]
	v := uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
	r.pos += 4
	return v
}

// Bytes reads exactly n bytes. The returned slice aliases the input.
// A negative n fails with ErrMalformed.
func (r *Reader) Bytes(n int) []byte {
	if n < 0 {
		r.Fail(ErrMalformed)
		return nil
	}
	if !r.need(n) {
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// Rest consumes and returns all remaining bytes.
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.data[r.pos:]
	r.pos = len(r.data)
	return b
}

// Skip advances the cursor by n bytes.
func (r *Reader) Skip(n int) {
	if n < 0 {
		r.Fail(ErrMalformed)
		return
	}
	if r.need(n) {
		r.pos += n
	}
}

// Peek returns the next byte without consuming it.
func (r *Reader) Peek() byte {
	if r.err != nil || r.Remaining() < 1 {
		return 0
	}
	return r.data[r.pos]
}

// Varint reads an MQTT-style variable-byte integer: 7 bits per byte,
// continuation in the high bit, at most 4 bytes.
func (r *Reader) Varint() uint32 {
	var v uint32
	for shift := 0; ; shift += 7 {
		if shift > 21 {
			r.Fail(ErrMalformed)
			return 0
		}
		b := r.U8()
		if r.err != nil {
			return 0
		}
		v |= uint32(b&0x7f) << shift
		if b&0x80 == 0 {
			return v
		}
	}
}

// Bytes16 reads a uint16 length prefix followed by that many bytes.
func (r *Reader) Bytes16() []byte {
	n := r.U16()
	return r.Bytes(int(n))
}

// String16 reads a uint16-length-prefixed UTF-8 string.
func (r *Reader) String16() string { return string(r.Bytes16()) }

// Bytes32 reads a big-endian uint32 length prefix followed by that many
// bytes (the framing primitive of the distributed campaign protocol,
// whose corpus and coverage payloads outgrow a uint16 prefix). A prefix
// larger than the remaining input fails with ErrTruncated before any
// allocation, so a hostile length cannot balloon memory.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	if r.err == nil && int64(n) > int64(r.Remaining()) {
		r.Fail(ErrTruncated)
		return nil
	}
	return r.Bytes(int(n))
}

// String32 reads a uint32-length-prefixed UTF-8 string.
func (r *Reader) String32() string { return string(r.Bytes32()) }

// A Writer encodes binary fields into a growing buffer. The zero value is
// ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity for n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the encoded buffer. It aliases internal storage.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset empties the buffer but keeps its capacity, so an encoder on a
// hot path (the distributed lease loop) can be reused without
// reallocating. Slices previously returned by Bytes alias the storage
// Reset reuses: callers must consume or copy them first.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 appends one byte.
func (w *Writer) U8(v byte) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = append(w.buf, byte(v>>8), byte(v)) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	w.U32(uint32(v >> 32))
	w.U32(uint32(v))
}

// U16LE appends a little-endian uint16.
func (w *Writer) U16LE(v uint16) { w.buf = append(w.buf, byte(v), byte(v>>8)) }

// U32LE appends a little-endian uint32.
func (w *Writer) U32LE(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Raw appends b verbatim.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Varint appends an MQTT-style variable-byte integer (max 4 bytes,
// i.e. values up to 268,435,455; larger values are truncated to that max).
func (w *Writer) Varint(v uint32) {
	const max = 268435455
	if v > max {
		v = max
	}
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v > 0 {
			w.buf = append(w.buf, b|0x80)
		} else {
			w.buf = append(w.buf, b)
			return
		}
	}
}

// Bytes16 appends a uint16 length prefix followed by b. Inputs longer
// than 65535 bytes are truncated to fit the prefix.
func (w *Writer) Bytes16(b []byte) {
	if len(b) > 0xffff {
		b = b[:0xffff]
	}
	w.U16(uint16(len(b)))
	w.Raw(b)
}

// String16 appends a uint16-length-prefixed string.
func (w *Writer) String16(s string) { w.Bytes16([]byte(s)) }

// Bytes32 appends a big-endian uint32 length prefix followed by b.
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.Raw(b)
}

// String32 appends a uint32-length-prefixed string.
func (w *Writer) String32(s string) { w.Bytes32([]byte(s)) }
