package fuzz

import (
	"math/rand"
	"sort"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
)

// A Target is the system under test as the engine sees it: one call runs
// a full message sequence against a fresh protocol session, records branch
// coverage into tr, and reports a crash if a seeded defect fired.
//
// The engine reuses seq's backing buffers across iterations: a Target
// must not retain seq or its messages past the Run call (copy anything
// it needs to keep).
type Target interface {
	Run(seq [][]byte, tr *coverage.Trace) *bugs.Crash
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func(seq [][]byte, tr *coverage.Trace) *bugs.Crash

// Run calls f.
func (f TargetFunc) Run(seq [][]byte, tr *coverage.Trace) *bugs.Crash {
	return f(seq, tr)
}

// Config parameterizes an engine instance.
type Config struct {
	// Models indexes the data models by name.
	Models map[string]*DataModel
	// StateModel drives message sequencing.
	StateModel *StateModel
	// Mutators is the mutation suite (DefaultMutators if nil).
	Mutators []Mutator
	// Seed makes the instance deterministic.
	Seed int64
	// MaxOps bounds structural mutations per message (default 3).
	MaxOps int
	// GenProb is the probability of structured generation from the models
	// versus byte-level havoc of a corpus seed. The zero value selects
	// the default (0.5); any negative value — use the Never sentinel —
	// pins it to exactly 0 ("never generate"), which a literal 0 cannot
	// express because it is indistinguishable from unset.
	GenProb float64
	// MutateProb is the probability that a freshly generated message gets
	// structural mutations at all; the remainder are sent valid to drive
	// the state machine deep. The zero value selects the default (0.8);
	// any negative value — use Never — pins it to exactly 0 ("never
	// mutate").
	MutateProb float64
	// MaxWalkSteps bounds state model traversal (default 8).
	MaxWalkSteps int
	// FixedPaths, when non-empty, restricts generation to these state
	// model paths (SPFuzz assigns each instance a disjoint path subset).
	FixedPaths []Path
	// MaxCorpus bounds the seed pool (default 256).
	MaxCorpus int
}

// Never is the sentinel for Config probability fields (GenProb,
// MutateProb) meaning "probability exactly 0". A literal 0 cannot carry
// that meaning: it is the zero value, so setDefaults must read it as
// "unset, use the default".
const Never = -1.0

func (c *Config) setDefaults() {
	if c.Mutators == nil {
		c.Mutators = DefaultMutators()
	}
	if c.MaxOps == 0 {
		c.MaxOps = 3
	}
	switch {
	case c.GenProb == 0:
		c.GenProb = 0.5
	case c.GenProb < 0:
		c.GenProb = 0
	}
	switch {
	case c.MutateProb == 0:
		c.MutateProb = 0.8
	case c.MutateProb < 0:
		c.MutateProb = 0
	}
	if c.MaxWalkSteps == 0 {
		c.MaxWalkSteps = 8
	}
	if c.MaxCorpus == 0 {
		c.MaxCorpus = DefaultMaxCorpus
	}
}

// A Seed is one message sequence that produced new coverage.
type Seed struct {
	Msgs [][]byte
	Gain int // edges it discovered when first executed
}

// Stats aggregates an engine's activity.
type Stats struct {
	Execs      int
	Crashes    int
	CorpusSize int
	BytesSent  int64
}

// StepResult reports one fuzzing iteration.
type StepResult struct {
	NewEdges int
	Crash    *bugs.Crash
	Bytes    int
	Messages int
}

// An Engine is one fuzzing instance's generation/mutation loop with
// coverage feedback — the Peach execution core.
//
// The engine owns a set of per-instance scratch structures (element
// arena, serialize buffers, walk and sequence slices) that make the
// steady-state Step path allocation-free: a step that discovers nothing
// new reuses every buffer of the previous step. Sequences that do earn a
// corpus slot are deep-copied out of the scratch first, so corpus seeds
// never alias reused buffers.
type Engine struct {
	cfg      Config
	target   Target
	rng      *rand.Rand
	trace    *coverage.Trace
	global   *coverage.Map
	corpus   *Corpus
	lastSeed Seed // most recent corpus addition; see LastSeed
	stats    Stats

	// Hot-path scratch, reused across Steps.
	arena      *Arena
	compiledSM *CompiledStateModel
	modelOrder []string // model names sorted, for the deterministic no-state-model pick
	walkBuf    []string
	seqBuf     [][]byte
	msgBufs    [][]byte // per-slot wire buffers backing seqBuf entries
}

// NewEngine returns an engine fuzzing target under cfg.
func NewEngine(cfg Config, target Target) *Engine {
	cfg.setDefaults()
	e := &Engine{
		cfg:    cfg,
		target: target,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		trace:  coverage.NewTrace(),
		global: coverage.NewMap(),
		corpus: NewCorpus(cfg.MaxCorpus),
		arena:  NewArena(),
	}
	if cfg.StateModel != nil {
		e.compiledSM = cfg.StateModel.Compile()
	}
	e.modelOrder = make([]string, 0, len(cfg.Models))
	for name := range cfg.Models {
		e.modelOrder = append(e.modelOrder, name)
	}
	sort.Strings(e.modelOrder)
	return e
}

// Coverage returns the instance's cumulative covered-branch count.
func (e *Engine) Coverage() int { return e.global.Count() }

// CoverageMap returns the instance's cumulative coverage map (live; do
// not modify).
func (e *Engine) CoverageMap() *coverage.Map { return e.global }

// TraceMap returns the per-exec trace map of the most recent Step
// (live; do not modify). It is valid only until the next Step resets
// it; the distributed worker reads it there to bound delta encoding to
// the words the execution actually touched.
func (e *Engine) TraceMap() *coverage.Map { return e.trace.Map() }

// Absorb folds an externally produced coverage map (typically startup
// coverage from booting the instance) into the cumulative instance map
// and returns how many edges were new.
func (e *Engine) Absorb(m *coverage.Map) int { return e.global.Union(m) }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.CorpusSize = e.corpus.Len()
	return s
}

// LastSeed returns the most recent corpus addition. It is meaningful
// only immediately after a Step that reported NewEdges > 0; the
// distributed worker reads it there to ship the addition to the
// coordinator's corpus mirror.
func (e *Engine) LastSeed() Seed { return e.lastSeed }

// Step executes one fuzzing iteration: build a message sequence
// (structured generation or corpus havoc), run it, fold its coverage into
// the instance map, and keep it as a seed if it found new edges.
func (e *Engine) Step() StepResult {
	var seq [][]byte
	switch {
	case e.corpus.Len() == 0 || e.rng.Float64() < e.cfg.GenProb:
		seq = e.generate()
	case e.corpus.Len() >= 2 && e.rng.Float64() < 0.2:
		// Splice two corpus seeds: the head of one sequence followed by
		// the tail of another, recombining progress from synchronized
		// siblings.
		seq = e.splice(e.corpus.At(e.rng.Intn(e.corpus.Len())), e.corpus.At(e.rng.Intn(e.corpus.Len())))
	default:
		seq = e.havoc(e.corpus.At(e.rng.Intn(e.corpus.Len())))
	}

	e.trace.Reset()
	crash := e.target.Run(seq, e.trace)
	newEdges := e.global.Union(e.trace.Map())

	e.stats.Execs++
	res := StepResult{NewEdges: newEdges, Crash: crash, Messages: len(seq)}
	for _, m := range seq {
		res.Bytes += len(m)
		e.stats.BytesSent += int64(len(m))
	}
	if crash != nil {
		e.stats.Crashes++
	}
	if newEdges > 0 {
		// The sequence earned a corpus slot: copy it out of the reused
		// step buffers so the seed owns its bytes.
		e.lastSeed = Seed{Msgs: cloneMsgs(seq), Gain: newEdges}
		e.corpus.Add(e.lastSeed)
	}
	return res
}

func cloneMsgs(seq [][]byte) [][]byte {
	out := make([][]byte, len(seq))
	for i, m := range seq {
		out[i] = append([]byte(nil), m...)
	}
	return out
}

// slotBuf returns the reusable wire buffer for sequence slot i, emptied
// and ready to append into; the caller stores the grown result back via
// e.msgBufs[i] so capacity survives to the next step.
func (e *Engine) slotBuf(i int) []byte {
	for len(e.msgBufs) <= i {
		e.msgBufs = append(e.msgBufs, nil)
	}
	return e.msgBufs[i][:0]
}

// generate walks the state model (or a fixed assigned path) and
// instantiates each output's data model, optionally mutating fields.
// Element trees come from the per-engine arena and wire bytes land in
// per-slot reused buffers, so a warmed-up generate allocates nothing.
func (e *Engine) generate() [][]byte {
	var modelNames []string
	if len(e.cfg.FixedPaths) > 0 {
		modelNames = e.cfg.FixedPaths[e.rng.Intn(len(e.cfg.FixedPaths))].Models
	} else if e.compiledSM != nil {
		e.walkBuf = e.compiledSM.WalkInto(e.rng, e.cfg.MaxWalkSteps, e.walkBuf[:0])
		modelNames = e.walkBuf
	}
	if len(modelNames) == 0 && len(e.modelOrder) > 0 {
		// No state model: fuzz the lexicographically smallest data model
		// as a standalone packet. (Map-range order here would make the
		// pick nondeterministic across runs.)
		modelNames = e.modelOrder[:1]
	}
	e.arena.Reset()
	seq := e.seqBuf[:0]
	for _, name := range modelNames {
		dm, ok := e.cfg.Models[name]
		if !ok {
			continue
		}
		msg := dm.NewMessageIn(e.arena, e.rng)
		if e.rng.Float64() < e.cfg.MutateProb {
			MutateMessageIn(e.arena, &msg, e.cfg.Mutators, e.rng, e.cfg.MaxOps)
		}
		buf := msg.AppendSerialize(e.arena, e.slotBuf(len(seq)))
		e.msgBufs[len(seq)] = buf
		seq = append(seq, buf)
	}
	e.seqBuf = seq
	return seq
}

// havoc applies byte-level transformations to a corpus seed: flips,
// random bytes, truncation, duplication of whole messages. Seed messages
// are copied into the engine's per-slot buffers first; corpus storage is
// never mutated in place.
func (e *Engine) havoc(s Seed) [][]byte {
	seq := e.seqBuf[:0]
	for i, m := range s.Msgs {
		buf := append(e.slotBuf(i), m...)
		e.msgBufs[i] = buf
		seq = append(seq, buf)
	}
	if len(seq) == 0 {
		e.seqBuf = seq
		return seq
	}
	ops := 1 + e.rng.Intn(4)
	for i := 0; i < ops; i++ {
		mi := e.rng.Intn(len(seq))
		m := seq[mi]
		switch e.rng.Intn(5) {
		case 0: // bit flip
			if len(m) > 0 {
				bit := e.rng.Intn(len(m) * 8)
				m[bit/8] ^= 1 << uint(bit%8)
			}
		case 1: // random byte
			if len(m) > 0 {
				m[e.rng.Intn(len(m))] = byte(e.rng.Intn(256))
			}
		case 2: // truncate
			if len(m) > 1 {
				seq[mi] = m[:1+e.rng.Intn(len(m)-1)]
			}
		case 3: // duplicate a message in the sequence
			if len(seq) < 16 {
				seq = append(seq, nil)
				copy(seq[mi+1:], seq[mi:])
				seq[mi] = append([]byte(nil), m...)
			}
		case 4: // append random tail
			tail := make([]byte, 1+e.rng.Intn(8))
			for j := range tail {
				tail[j] = byte(e.rng.Intn(256))
			}
			seq[mi] = append(m, tail...)
		}
	}
	e.seqBuf = seq
	return seq
}

// splice builds a sequence from a prefix of one seed and a suffix of
// another, then applies light havoc.
func (e *Engine) splice(a, b Seed) [][]byte {
	cut1 := 0
	if len(a.Msgs) > 0 {
		cut1 = 1 + e.rng.Intn(len(a.Msgs))
	}
	cut2 := 0
	if len(b.Msgs) > 0 {
		cut2 = e.rng.Intn(len(b.Msgs))
	}
	seq := make([][]byte, 0, cut1+len(b.Msgs)-cut2)
	for _, m := range a.Msgs[:cut1] {
		seq = append(seq, append([]byte(nil), m...))
	}
	for _, m := range b.Msgs[cut2:] {
		seq = append(seq, append([]byte(nil), m...))
	}
	if len(seq) > 16 {
		seq = seq[:16]
	}
	return e.havoc(Seed{Msgs: seq})
}

// ExportSeeds returns up to max of the engine's highest-gain seeds for
// synchronization with sibling instances (the AFL/Peach parallel-mode
// mechanism the baselines use).
func (e *Engine) ExportSeeds(max int) []Seed { return e.corpus.Export(max) }

// ImportSeeds folds synchronized seeds from a sibling instance into the
// corpus.
func (e *Engine) ImportSeeds(seeds []Seed) {
	for _, s := range seeds {
		e.corpus.Add(s)
	}
}
