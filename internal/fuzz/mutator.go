package fuzz

import "math/rand"

// A Mutator transforms one message field, Peach-style. Mutators never
// touch Token fields.
type Mutator interface {
	// Name identifies the mutator in statistics.
	Name() string
	// Applicable reports whether the mutator can act on e.
	Applicable(e *Element) bool
	// Mutate transforms e in place using randomness from r.
	Mutate(e *Element, r *rand.Rand)
}

// DefaultMutators returns the standard mutator suite: numeric boundary and
// random values, size-relation corruption, string expansion/emptying/
// special tokens, and blob bit flips, truncation, duplication and
// insertion — the classic transformations the paper lists (§II-B).
func DefaultMutators() []Mutator {
	return []Mutator{
		numberBoundary{},
		numberRandom{},
		sizeBreaker{},
		stringRepeat{},
		stringEmpty{},
		stringSpecial{},
		blobBitFlip{},
		blobTruncate{},
		blobDuplicate{},
		blobInsert{},
		blobRandomBytes{},
	}
}

func isNumber(e *Element) bool { return e.Kind == KindNumber && !e.Token }
func isBytes(e *Element) bool {
	return (e.Kind == KindString || e.Kind == KindBlob) && !e.Token
}

type numberBoundary struct{}

func (numberBoundary) Name() string               { return "NumberBoundary" }
func (numberBoundary) Applicable(e *Element) bool { return isNumber(e) }
func (numberBoundary) Mutate(e *Element, r *rand.Rand) {
	max := uint64(1)<<uint(e.Bits) - 1
	if e.Bits >= 64 || e.Bits == 0 {
		max = ^uint64(0)
	}
	boundaries := []uint64{0, 1, max, max - 1, max / 2, 127, 128, 255, 256, 65535}
	e.Value = boundaries[r.Intn(len(boundaries))]
	e.SizeBroken = e.SizeOf != "" || e.CountOf != ""
}

type numberRandom struct{}

func (numberRandom) Name() string               { return "NumberRandom" }
func (numberRandom) Applicable(e *Element) bool { return isNumber(e) }
func (numberRandom) Mutate(e *Element, r *rand.Rand) {
	e.Value = r.Uint64()
	if e.Bits > 0 && e.Bits < 64 {
		e.Value &= uint64(1)<<uint(e.Bits) - 1
	}
	e.SizeBroken = e.SizeOf != "" || e.CountOf != ""
}

// sizeBreaker corrupts a size or count relation: the field keeps a stale
// or skewed value instead of being recomputed at serialization.
type sizeBreaker struct{}

func (sizeBreaker) Name() string { return "SizeRelationBreak" }
func (sizeBreaker) Applicable(e *Element) bool {
	return isNumber(e) && (e.SizeOf != "" || e.CountOf != "")
}
func (sizeBreaker) Mutate(e *Element, r *rand.Rand) {
	e.SizeBroken = true
	switch r.Intn(4) {
	case 0:
		e.Value = 0
	case 1:
		e.Value = e.Value + 1 + uint64(r.Intn(16))
	case 2:
		if e.Value > 0 {
			e.Value--
		}
	default:
		e.Value = uint64(r.Intn(70000))
	}
}

type stringRepeat struct{}

func (stringRepeat) Name() string { return "StringRepeat" }
func (stringRepeat) Applicable(e *Element) bool {
	return e.Kind == KindString && !e.Token
}
func (stringRepeat) Mutate(e *Element, r *rand.Rand) {
	unit := e.Data
	if len(unit) == 0 {
		unit = []byte("A")
	}
	reps := 1 << uint(1+r.Intn(9)) // 2..512 copies
	out := make([]byte, 0, len(unit)*reps)
	for i := 0; i < reps; i++ {
		out = append(out, unit...)
	}
	e.Data = out
}

type stringEmpty struct{}

func (stringEmpty) Name() string { return "StringEmpty" }
func (stringEmpty) Applicable(e *Element) bool {
	return e.Kind == KindString && !e.Token && len(e.Data) > 0
}
func (stringEmpty) Mutate(e *Element, r *rand.Rand) { e.Data = nil }

// stringSpecial injects classic hostile payloads: traversal sequences,
// format strings, NUL bytes, overlong UTF-8 and separator floods.
type stringSpecial struct{}

var specialStrings = [][]byte{
	[]byte("../../../../etc/passwd"),
	[]byte("%s%s%s%s%n"),
	[]byte("\x00"),
	[]byte("\xff\xfe\xfd"),
	[]byte("////////"),
	[]byte("$(reboot)"),
	[]byte("AAAA%x%x%x"),
	[]byte("\"'<>&;"),
}

func (stringSpecial) Name() string { return "StringSpecial" }
func (stringSpecial) Applicable(e *Element) bool {
	return e.Kind == KindString && !e.Token
}
func (stringSpecial) Mutate(e *Element, r *rand.Rand) {
	e.Data = append([]byte(nil), specialStrings[r.Intn(len(specialStrings))]...)
}

type blobBitFlip struct{}

func (blobBitFlip) Name() string { return "BlobBitFlip" }
func (blobBitFlip) Applicable(e *Element) bool {
	return isBytes(e) && len(e.Data) > 0
}
func (blobBitFlip) Mutate(e *Element, r *rand.Rand) {
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		bit := r.Intn(len(e.Data) * 8)
		e.Data[bit/8] ^= 1 << uint(bit%8)
	}
}

type blobTruncate struct{}

func (blobTruncate) Name() string { return "BlobTruncate" }
func (blobTruncate) Applicable(e *Element) bool {
	return isBytes(e) && len(e.Data) > 0
}
func (blobTruncate) Mutate(e *Element, r *rand.Rand) {
	e.Data = e.Data[:r.Intn(len(e.Data))]
}

type blobDuplicate struct{}

func (blobDuplicate) Name() string { return "BlobDuplicate" }
func (blobDuplicate) Applicable(e *Element) bool {
	return isBytes(e) && len(e.Data) > 0 && len(e.Data) < 1<<16
}
func (blobDuplicate) Mutate(e *Element, r *rand.Rand) {
	reps := 1 + r.Intn(4)
	out := append([]byte(nil), e.Data...)
	for i := 0; i < reps; i++ {
		out = append(out, e.Data...)
	}
	e.Data = out
}

type blobInsert struct{}

func (blobInsert) Name() string               { return "BlobInsert" }
func (blobInsert) Applicable(e *Element) bool { return isBytes(e) }
func (blobInsert) Mutate(e *Element, r *rand.Rand) {
	insert := make([]byte, 1+r.Intn(8))
	for i := range insert {
		insert[i] = byte(r.Intn(256))
	}
	pos := 0
	if len(e.Data) > 0 {
		pos = r.Intn(len(e.Data) + 1)
	}
	out := make([]byte, 0, len(e.Data)+len(insert))
	out = append(out, e.Data[:pos]...)
	out = append(out, insert...)
	out = append(out, e.Data[pos:]...)
	e.Data = out
}

type blobRandomBytes struct{}

func (blobRandomBytes) Name() string { return "BlobRandomBytes" }
func (blobRandomBytes) Applicable(e *Element) bool {
	return isBytes(e) && len(e.Data) > 0
}
func (blobRandomBytes) Mutate(e *Element, r *rand.Rand) {
	n := 1 + r.Intn(len(e.Data))
	for i := 0; i < n; i++ {
		e.Data[r.Intn(len(e.Data))] = byte(r.Intn(256))
	}
}

// MutateMessage applies between 1 and maxOps random applicable mutations
// to msg and returns the number applied.
func MutateMessage(msg *Message, mutators []Mutator, r *rand.Rand, maxOps int) int {
	return MutateMessageIn(nil, msg, mutators, r, maxOps)
}

// MutateMessageIn is MutateMessage borrowing a's leaf scratch for the
// field list, sparing the engine hot loop one allocation per mutated
// message. The rng draw sequence is identical to MutateMessage.
func MutateMessageIn(a *Arena, msg *Message, mutators []Mutator, r *rand.Rand, maxOps int) int {
	var leaves []*Element
	if a != nil {
		a.leaves = appendLeaves(a.leaves[:0], msg.Root)
		leaves = a.leaves
	} else {
		leaves = msg.Leaves()
	}
	if len(leaves) == 0 || len(mutators) == 0 {
		return 0
	}
	if maxOps < 1 {
		maxOps = 1
	}
	applied := 0
	ops := 1 + r.Intn(maxOps)
	for i := 0; i < ops; i++ {
		// Rejection-sample an applicable (field, mutator) pair.
		for try := 0; try < 16; try++ {
			e := leaves[r.Intn(len(leaves))]
			m := mutators[r.Intn(len(mutators))]
			if m.Applicable(e) {
				m.Mutate(e, r)
				applied++
				break
			}
		}
	}
	return applied
}
