package fuzz

import (
	"bytes"
	"strings"
	"testing"
)

const samplePit = `<?xml version="1.0"?>
<Peach>
  <DataModel name="Connect">
    <Number name="type" bits="8" value="16" token="true"/>
    <Number name="remlen" varint="true" sizeOf="body"/>
    <Block name="body">
      <String name="proto" value="MQTT"/>
      <Number name="level" bits="8" value="4"/>
      <Choice name="auth">
        <Block name="anon">
          <Number name="flags" bits="8" value="2"/>
        </Block>
        <Block name="pass">
          <Number name="flags" bits="8" value="194"/>
          <String name="password" value="secret"/>
        </Block>
      </Choice>
      <Blob name="payload" valueHex="0102"/>
    </Block>
  </DataModel>
  <DataModel name="Ping">
    <Number name="type" bits="8" value="192" token="true"/>
    <Blob name="pad" length="2"/>
  </DataModel>
  <StateModel name="Session" initialState="init">
    <State name="init">
      <Action type="output" dataModel="Connect"/>
      <Action type="input"/>
      <Action type="changeState" to="steady"/>
    </State>
    <State name="steady">
      <Action type="output" dataModel="Ping"/>
    </State>
  </StateModel>
</Peach>`

func TestParsePit(t *testing.T) {
	pit, err := ParsePit(samplePit)
	if err != nil {
		t.Fatal(err)
	}
	if len(pit.DataModels) != 2 || len(pit.StateModels) != 1 {
		t.Fatalf("models = %d data, %d state", len(pit.DataModels), len(pit.StateModels))
	}

	conn := pit.DataModels["Connect"]
	if conn == nil {
		t.Fatal("Connect model missing")
	}
	msg := conn.NewMessage(testRand())
	typeField := msg.Find("type")
	if typeField == nil || !typeField.Token || typeField.Value != 16 {
		t.Fatalf("type field = %+v", typeField)
	}
	rem := msg.Find("remlen")
	if rem == nil || !rem.Varint || rem.SizeOf != "body" {
		t.Fatalf("remlen field = %+v", rem)
	}
	if f := msg.Find("payload"); f == nil || !bytes.Equal(f.Data, []byte{1, 2}) {
		t.Fatalf("payload = %+v", f)
	}

	ping := pit.DataModels["Ping"]
	pmsg := ping.NewMessage(testRand())
	if f := pmsg.Find("pad"); f == nil || len(f.Data) != 2 {
		t.Fatalf("pad = %+v", f)
	}

	// Serialized Connect starts with the token and a correct varint size.
	out := msg.Serialize()
	if out[0] != 16 {
		t.Fatalf("first byte = %d", out[0])
	}

	sm := pit.StateModels["Session"]
	if sm.Initial != "init" || len(sm.States) != 2 {
		t.Fatalf("state model = %+v", sm)
	}
	walk := sm.Walk(testRand(), 10)
	if len(walk) != 2 || walk[0] != "Connect" || walk[1] != "Ping" {
		t.Fatalf("walk = %v", walk)
	}
}

func TestParsePitErrors(t *testing.T) {
	cases := []struct {
		name string
		xml  string
	}{
		{"unnamed data model", `<Peach><DataModel><Number name="n"/></DataModel></Peach>`},
		{"unsupported element", `<Peach><DataModel name="m"><Widget name="w"/></DataModel></Peach>`},
		{"bad hex", `<Peach><DataModel name="m"><Blob name="b" valueHex="zz"/></DataModel></Peach>`},
		{"unnamed state model", `<Peach><StateModel initialState="a"><State name="a"></State></StateModel></Peach>`},
		{"bad action type", `<Peach><StateModel name="s" initialState="a"><State name="a"><Action type="explode"/></State></StateModel></Peach>`},
		{"dangling transition", `<Peach><StateModel name="s" initialState="a"><State name="a"><Action type="changeState" to="ghost"/></State></StateModel></Peach>`},
		{"missing initial", `<Peach><StateModel name="s" initialState="ghost"><State name="a"></State></StateModel></Peach>`},
		{"malformed xml", `<Peach><DataModel name="m">`},
	}
	for _, c := range cases {
		if _, err := ParsePit(c.xml); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParsePitUnknownTopLevelSkipped(t *testing.T) {
	pit, err := ParsePit(`<Peach><Include src="x"/><DataModel name="m"><Number name="n" bits="8"/></DataModel></Peach>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(pit.DataModels) != 1 {
		t.Fatalf("models = %d", len(pit.DataModels))
	}
}

func TestParsePitStateModelDocumentOrder(t *testing.T) {
	// Names chosen so document order differs from both sorted order and
	// any plausible map order: the default must be the FIRST declared.
	pit, err := ParsePit(`<Peach>
	  <DataModel name="m"><Number name="n" bits="8"/></DataModel>
	  <StateModel name="Zeta" initialState="a"><State name="a"><Action type="output" dataModel="m"/></State></StateModel>
	  <StateModel name="Alpha" initialState="a"><State name="a"><Action type="output" dataModel="m"/></State></StateModel>
	  <StateModel name="Mid" initialState="a"><State name="a"><Action type="output" dataModel="m"/></State></StateModel>
	</Peach>`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Zeta", "Alpha", "Mid"}
	if len(pit.StateModelOrder) != len(want) {
		t.Fatalf("order = %v", pit.StateModelOrder)
	}
	for i, name := range want {
		if pit.StateModelOrder[i] != name {
			t.Fatalf("order = %v, want %v", pit.StateModelOrder, want)
		}
	}
	if sm := pit.DefaultStateModel(); sm == nil || sm.Name != "Zeta" {
		t.Fatalf("default state model = %+v, want Zeta", sm)
	}
	empty := &Pit{}
	if empty.DefaultStateModel() != nil {
		t.Fatal("empty pit should have no default state model")
	}
}

func TestParsePitStateModelWithoutModelsValidatesOutputs(t *testing.T) {
	_, err := ParsePit(`<Peach>
	  <StateModel name="s" initialState="a">
	    <State name="a"><Action type="output" dataModel="Ghost"/></State>
	  </StateModel>
	</Peach>`)
	if err == nil || !strings.Contains(err.Error(), "Ghost") {
		t.Fatalf("err = %v, want undefined data model error", err)
	}
}
