// Package fuzz is the generation-based protocol fuzzing engine CMFuzz
// builds on — a Go equivalent of the Peach fuzzing platform's layer the
// paper extends. It provides the two traditional protocol-fuzzing models
// (paper §II-B): the data model, describing packet structure (fields,
// types, length relations, choices), and the state model, describing the
// protocol's interaction sequences. A Pit-style XML loader, a mutator
// suite, and the feedback-driven engine loop complete the platform.
package fuzz

import (
	"fmt"
	"math/rand"
)

// ElementKind is the type of a data model element.
type ElementKind int

// The element kinds supported by the data model, mirroring Peach's core
// element vocabulary.
const (
	KindNumber ElementKind = iota
	KindString
	KindBlob
	KindBlock
	KindChoice
)

var kindNames = [...]string{
	KindNumber: "Number",
	KindString: "String",
	KindBlob:   "Blob",
	KindBlock:  "Block",
	KindChoice: "Choice",
}

// String names the kind.
func (k ElementKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("ElementKind(%d)", int(k))
	}
	return kindNames[k]
}

// Endian selects a number field's byte order.
type Endian int

// Byte orders.
const (
	BigEndian Endian = iota
	LittleEndian
)

// An Element is one node of a data model tree and, after instantiation,
// one concrete field of a message.
type Element struct {
	Kind ElementKind
	Name string

	// Number fields.
	Bits   int // 8, 16, 24, 32 or 64
	Endian Endian
	Value  uint64

	// String and Blob fields.
	Data []byte

	// Block and Choice children. For an instantiated Choice, Selected
	// indexes the child in effect.
	Children []*Element
	Selected int

	// Token marks protocol framing bytes the mutators must not touch
	// (magic numbers, fixed headers).
	Token bool

	// SizeOf names another element whose serialized byte length this
	// number field carries; CountOf names an element whose child count it
	// carries. SizeBroken suppresses the automatic fix-up after a mutator
	// deliberately corrupts the relation.
	SizeOf     string
	CountOf    string
	SizeBroken bool

	// Varint encodes this number as an MQTT-style variable-byte integer
	// instead of a fixed-width field.
	Varint bool
}

// Clone deep-copies the element tree.
func (e *Element) Clone() *Element {
	c := *e
	if e.Data != nil {
		c.Data = append([]byte(nil), e.Data...)
	}
	if e.Children != nil {
		c.Children = make([]*Element, len(e.Children))
		for i, ch := range e.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return &c
}

// A DataModel describes one packet type.
type DataModel struct {
	Name string
	Root *Element
}

// NewMessage instantiates the model into a concrete message: choices are
// resolved (uniformly at random) and default values copied, ready for
// mutation and serialization.
func (m *DataModel) NewMessage(r *rand.Rand) *Message {
	root := m.Root.Clone()
	resolveChoices(root, r)
	return &Message{Model: m, Root: root}
}

// NewMessageIn is NewMessage with the element tree carved out of a (when
// non-nil) instead of the heap. The returned value — and everything it
// references — is only valid until the arena's next Reset; the engine
// serializes before resetting, so nothing arena-backed escapes a step.
func (m *DataModel) NewMessageIn(a *Arena, r *rand.Rand) Message {
	if a == nil {
		root := m.Root.Clone()
		resolveChoices(root, r)
		return Message{Model: m, Root: root}
	}
	root := cloneInto(m.Root, a)
	resolveChoices(root, r)
	return Message{Model: m, Root: root}
}

func resolveChoices(e *Element, r *rand.Rand) {
	if e.Kind == KindChoice && len(e.Children) > 0 {
		e.Selected = r.Intn(len(e.Children))
	}
	for _, ch := range e.Children {
		resolveChoices(ch, r)
	}
}

// A Message is one instantiated, mutable packet.
type Message struct {
	Model *DataModel
	Root  *Element
}

// Clone deep-copies the message.
func (msg *Message) Clone() *Message {
	return &Message{Model: msg.Model, Root: msg.Root.Clone()}
}

// Leaves returns the message's active leaf fields (numbers, strings,
// blobs), honoring choice selections, in serialization order.
func (msg *Message) Leaves() []*Element {
	return appendLeaves(nil, msg.Root)
}

// appendLeaves appends the active leaves under e to out and returns the
// extended slice, letting hot paths reuse a scratch slice across calls.
func appendLeaves(out []*Element, e *Element) []*Element {
	switch e.Kind {
	case KindBlock:
		for _, ch := range e.Children {
			out = appendLeaves(out, ch)
		}
	case KindChoice:
		if len(e.Children) > 0 {
			sel := e.Selected
			if sel < 0 || sel >= len(e.Children) {
				sel = 0
			}
			out = appendLeaves(out, e.Children[sel])
		}
	default:
		out = append(out, e)
	}
	return out
}

// Find returns the active element with the given name, if any.
func (msg *Message) Find(name string) *Element {
	return findElement(msg.Root, name)
}

func findElement(e *Element, name string) *Element {
	if e.Name == name {
		return e
	}
	switch e.Kind {
	case KindBlock:
		for _, ch := range e.Children {
			if f := findElement(ch, name); f != nil {
				return f
			}
		}
	case KindChoice:
		if len(e.Children) > 0 {
			sel := e.Selected
			if sel < 0 || sel >= len(e.Children) {
				sel = 0
			}
			return findElement(e.Children[sel], name)
		}
	}
	return nil
}

// Serialize renders the message to wire bytes, resolving size and count
// relations first (unless a mutator broke them on purpose).
func (msg *Message) Serialize() []byte {
	return msg.AppendSerialize(nil, nil)
}

// AppendSerialize renders the message appended to buf and returns the
// extended slice, resolving size and count relations first. A non-nil
// arena lends its scratch (leaf list, size-measurement buffer) so a
// warmed-up caller serializes without heap allocation.
func (msg *Message) AppendSerialize(a *Arena, buf []byte) []byte {
	msg.fixRelations(a)
	return appendElement(buf, msg.Root)
}

func (msg *Message) fixRelations(a *Arena) {
	var leaves []*Element
	if a != nil {
		a.leaves = appendLeaves(a.leaves[:0], msg.Root)
		leaves = a.leaves
	} else {
		leaves = msg.Leaves()
	}
	for _, leaf := range leaves {
		if leaf.Kind != KindNumber || leaf.SizeBroken {
			continue
		}
		if leaf.SizeOf != "" {
			if target := msg.Find(leaf.SizeOf); target != nil {
				if a != nil {
					a.sizeBuf = appendElement(a.sizeBuf[:0], target)
					leaf.Value = uint64(len(a.sizeBuf))
				} else {
					leaf.Value = uint64(len(appendElement(nil, target)))
				}
			}
		}
		if leaf.CountOf != "" {
			if target := msg.Find(leaf.CountOf); target != nil {
				leaf.Value = uint64(len(target.Children))
			}
		}
	}
}

// appendElement appends e's wire encoding to buf and returns the
// extended slice.
func appendElement(buf []byte, e *Element) []byte {
	switch e.Kind {
	case KindNumber:
		return appendNumber(buf, e)
	case KindString, KindBlob:
		return append(buf, e.Data...)
	case KindBlock:
		for _, ch := range e.Children {
			buf = appendElement(buf, ch)
		}
	case KindChoice:
		if len(e.Children) > 0 {
			sel := e.Selected
			if sel < 0 || sel >= len(e.Children) {
				sel = 0
			}
			return appendElement(buf, e.Children[sel])
		}
	}
	return buf
}

func appendNumber(buf []byte, e *Element) []byte {
	if e.Varint {
		v := e.Value
		const max = 268435455
		if v > max {
			v = max
		}
		for {
			b := byte(v & 0x7f)
			v >>= 7
			if v > 0 {
				buf = append(buf, b|0x80)
			} else {
				return append(buf, b)
			}
		}
	}
	bytes := e.Bits / 8
	if bytes == 0 {
		bytes = 1
	}
	for i := 0; i < bytes; i++ {
		var shift uint
		if e.Endian == BigEndian {
			shift = uint(8 * (bytes - 1 - i))
		} else {
			shift = uint(8 * i)
		}
		buf = append(buf, byte(e.Value>>shift))
	}
	return buf
}

// Convenience constructors for building data models in Go code.

// Num returns a fixed-width big-endian number field.
func Num(name string, bits int, value uint64) *Element {
	return &Element{Kind: KindNumber, Name: name, Bits: bits, Value: value}
}

// NumLE returns a little-endian number field.
func NumLE(name string, bits int, value uint64) *Element {
	return &Element{Kind: KindNumber, Name: name, Bits: bits, Value: value, Endian: LittleEndian}
}

// Token returns a number field the mutators must preserve.
func Token(name string, bits int, value uint64) *Element {
	e := Num(name, bits, value)
	e.Token = true
	return e
}

// Str returns a string field with a default value.
func Str(name, value string) *Element {
	return &Element{Kind: KindString, Name: name, Data: []byte(value)}
}

// Blob returns a raw bytes field.
func Blob(name string, data []byte) *Element {
	return &Element{Kind: KindBlob, Name: name, Data: data}
}

// Block groups child elements.
func Block(name string, children ...*Element) *Element {
	return &Element{Kind: KindBlock, Name: name, Children: children}
}

// Choice selects exactly one of its children per message.
func Choice(name string, children ...*Element) *Element {
	return &Element{Kind: KindChoice, Name: name, Children: children}
}

// SizeOf returns a number field carrying the serialized length of the
// named element.
func SizeOf(name string, bits int, target string) *Element {
	e := Num(name, bits, 0)
	e.SizeOf = target
	return e
}

// VarintOf returns a variable-byte-integer field carrying the serialized
// length of the named element (the MQTT remaining-length idiom).
func VarintOf(name, target string) *Element {
	return &Element{Kind: KindNumber, Name: name, Varint: true, SizeOf: target}
}
