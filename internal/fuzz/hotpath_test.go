package fuzz

import (
	"bytes"
	"math/rand"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
)

func testRandSeed(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// hotTarget records bounded coverage derived from message bytes and never
// allocates, so allocation gates measure the engine alone.
var hotTarget = TargetFunc(func(seq [][]byte, tr *coverage.Trace) *bugs.Crash {
	for i, msg := range seq {
		for j, b := range msg {
			if j >= 8 {
				break
			}
			tr.Edge(uint32(i*8+j), uint64(b>>3))
		}
	}
	return nil
})

// TestStepAllocs pins the tentpole guarantee: once warmed up (scratch
// buffers grown, finite unmutated exec space explored), a Step on the
// structured-generation path performs zero heap allocations.
func TestStepAllocs(t *testing.T) {
	cfg := goldenConfig(7)
	cfg.GenProb = 1.0      // always generate: the steady-state hot path
	cfg.MutateProb = Never // valid messages only => finite exec space
	e := NewEngine(cfg, hotTarget)
	for i := 0; i < 512; i++ {
		e.Step()
	}
	if avg := testing.AllocsPerRun(200, func() { e.Step() }); avg != 0 {
		t.Fatalf("steady-state Step allocates %.1f objects/op on the generation path, want 0", avg)
	}
}

// TestStepAllocsHavoc bounds the corpus-havoc path: its transformations
// allocate only small per-op transients (duplicated messages, random
// tails), never anything proportional to the coverage map or corpus.
func TestStepAllocsHavoc(t *testing.T) {
	cfg := goldenConfig(8)
	cfg.GenProb = Never // corpus exists => always havoc/splice
	e := NewEngine(cfg, hotTarget)
	e.ImportSeeds([]Seed{
		{Msgs: [][]byte{{1, 2, 3, 4}, {5, 6}}, Gain: 1},
		{Msgs: [][]byte{{7, 8, 9}}, Gain: 1},
	})
	for i := 0; i < 2000; i++ {
		e.Step()
	}
	if avg := testing.AllocsPerRun(200, func() { e.Step() }); avg > 24 {
		t.Fatalf("havoc-path Step allocates %.1f objects/op, want a small per-op constant (<= 24)", avg)
	}
}

// TestConfigProbDefaults covers the zero-value trap fix: unset selects
// the documented default, the Never sentinel selects exactly zero, and
// explicit probabilities — both endpoints — survive setDefaults.
func TestConfigProbDefaults(t *testing.T) {
	var unset Config
	unset.setDefaults()
	if unset.GenProb != 0.5 || unset.MutateProb != 0.8 {
		t.Fatalf("unset probs = (%v, %v), want defaults (0.5, 0.8)", unset.GenProb, unset.MutateProb)
	}
	never := Config{GenProb: Never, MutateProb: Never}
	never.setDefaults()
	if never.GenProb != 0 || never.MutateProb != 0 {
		t.Fatalf("Never probs = (%v, %v), want (0, 0)", never.GenProb, never.MutateProb)
	}
	always := Config{GenProb: 1.0, MutateProb: 1.0}
	always.setDefaults()
	if always.GenProb != 1.0 || always.MutateProb != 1.0 {
		t.Fatalf("explicit probs = (%v, %v), want (1, 1)", always.GenProb, always.MutateProb)
	}
}

// TestNeverMutateSendsValidMessages checks the MutateProb endpoint
// behaviorally: with MutateProb Never every generated message is the
// model's pristine serialization.
func TestNeverMutateSendsValidMessages(t *testing.T) {
	model := &DataModel{Name: "M", Root: Block("M",
		Num("hdr", 8, 0x42), Str("body", "fixed"), SizeOf("len", 8, "body"))}
	want := model.NewMessage(testRand()).Serialize()
	cfg := Config{
		Models:     map[string]*DataModel{"M": model},
		FixedPaths: []Path{{Models: []string{"M"}}},
		Seed:       3, GenProb: 1.0, MutateProb: Never,
	}
	bad := false
	target := TargetFunc(func(seq [][]byte, tr *coverage.Trace) *bugs.Crash {
		for _, msg := range seq {
			if !bytes.Equal(msg, want) {
				bad = true
			}
		}
		return nil
	})
	e := NewEngine(cfg, target)
	for i := 0; i < 200; i++ {
		e.Step()
	}
	if bad {
		t.Fatal("MutateProb: Never still produced a mutated message")
	}
}

// TestNeverGenerateSticksToCorpus checks the GenProb endpoint: with a
// non-empty corpus and GenProb Never, the engine never takes the
// structured-generation path (whose sequences are unmistakable: eight
// 4-byte 0xA7 messages).
func TestNeverGenerateSticksToCorpus(t *testing.T) {
	marker := []byte{0xA7, 0xA7, 0xA7, 0xA7}
	model := &DataModel{Name: "M", Root: Blob("M", marker)}
	path := Path{Models: []string{"M", "M", "M", "M", "M", "M", "M", "M"}}
	sawMarker := false
	target := TargetFunc(func(seq [][]byte, tr *coverage.Trace) *bugs.Crash {
		for i, msg := range seq {
			if bytes.Equal(msg, marker) {
				sawMarker = true
			}
			if len(msg) > 0 {
				tr.Edge(uint32(i), uint64(msg[0]))
			}
		}
		return nil
	})
	cfg := Config{
		Models:     map[string]*DataModel{"M": model},
		FixedPaths: []Path{path},
		Seed:       4, GenProb: Never, MutateProb: Never,
	}
	e := NewEngine(cfg, target)
	e.ImportSeeds([]Seed{{Msgs: [][]byte{{0x01}}, Gain: 1}})
	for i := 0; i < 300; i++ {
		e.Step()
	}
	if sawMarker {
		t.Fatal("GenProb: Never still took the generation path")
	}
	// Control: with GenProb 1 the marker sequence appears immediately.
	sawMarker = false
	ctrl := NewEngine(Config{
		Models:     map[string]*DataModel{"M": model},
		FixedPaths: []Path{path},
		Seed:       4, GenProb: 1.0, MutateProb: Never,
	}, target)
	ctrl.Step()
	if !sawMarker {
		t.Fatal("control engine did not generate the marker sequence")
	}
}

// TestGenerateModelPickDeterministic pins the no-state-model fallback:
// with several models and neither state model nor fixed paths, every
// generated packet must come from the lexicographically smallest model
// name, independent of map iteration order.
func TestGenerateModelPickDeterministic(t *testing.T) {
	build := func(names ...string) map[string]*DataModel {
		models := make(map[string]*DataModel, len(names))
		for i, n := range names {
			models[n] = &DataModel{Name: n, Root: Num(n, 8, uint64(0x10+i))}
		}
		return models
	}
	run := func(models map[string]*DataModel) []byte {
		var first []byte
		target := TargetFunc(func(seq [][]byte, tr *coverage.Trace) *bugs.Crash {
			if first == nil && len(seq) > 0 {
				first = append([]byte(nil), seq[0]...)
			}
			return nil
		})
		e := NewEngine(Config{Models: models, Seed: 21, GenProb: 1.0, MutateProb: Never}, target)
		for i := 0; i < 50; i++ {
			e.Step()
		}
		return first
	}
	// Two insertion orders of the same model set; "alpha" (value 0x10 in
	// the first ordering) must win in both.
	a := run(build("alpha", "mid", "zeta"))
	b := run(build("zeta", "mid", "alpha"))
	if len(a) != 1 || a[0] != 0x10 {
		t.Fatalf("fallback picked %x, want the alpha model (0x10)", a)
	}
	if len(b) != 1 || b[0] != 0x12 {
		// In the second ordering alpha was built with value 0x10+2.
		t.Fatalf("fallback picked %x under reversed insertion, want alpha (0x12)", b)
	}
}

// TestCompiledWalkMatchesWalk pins rng-draw equivalence between the
// interpreted and compiled state-model traversals, including tolerance
// of transitions to undefined states.
func TestCompiledWalkMatchesWalk(t *testing.T) {
	sm := &StateModel{
		Name:    "w",
		Initial: "a",
		States: map[string]*State{
			"a": {Name: "a", Actions: []Action{
				{Kind: ActionOutput, DataModel: "m1"},
				{Kind: ActionChangeState, To: "b"},
				{Kind: ActionChangeState, To: "a"},
			}},
			"b": {Name: "b", Actions: []Action{
				{Kind: ActionOutput, DataModel: "m2"},
				{Kind: ActionOutput, DataModel: "m3"},
				{Kind: ActionChangeState, To: "missing"}, // ends the walk, like Walk's nil lookup
				{Kind: ActionChangeState, To: "a"},
			}},
		},
	}
	c := sm.Compile()
	for _, seed := range []int64{1, 2, 3, 99} {
		r1 := testRandSeed(seed)
		r2 := testRandSeed(seed)
		var buf []string
		for i := 0; i < 300; i++ {
			want := sm.Walk(r1, 8)
			buf = c.WalkInto(r2, 8, buf[:0])
			if len(want) != len(buf) {
				t.Fatalf("seed %d iter %d: lengths %d vs %d", seed, i, len(want), len(buf))
			}
			for j := range want {
				if want[j] != buf[j] {
					t.Fatalf("seed %d iter %d: walk[%d] %q vs %q", seed, i, j, want[j], buf[j])
				}
			}
		}
	}
}

// BenchmarkEngineStepGenerate is the pure structured-generation hot path
// (GenProb 1, mutation off): the configuration TestStepAllocs gates at
// zero allocations.
func BenchmarkEngineStepGenerate(b *testing.B) {
	cfg := goldenConfig(10)
	cfg.GenProb = 1.0
	cfg.MutateProb = Never
	e := NewEngine(cfg, hotTarget)
	for i := 0; i < 512; i++ {
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
