package fuzz

// DefaultMaxCorpus bounds a seed pool when no explicit cap is given
// (Config.MaxCorpus zero, NewCorpus given max <= 0).
const DefaultMaxCorpus = 256

// A Corpus is a bounded, gain-ranked seed pool. The engine owns one per
// instance; the distributed coordinator keeps a mirror per remote
// instance, fed from the seed additions workers stream back in their
// lease replies, so sync exports can be computed coordinator-side at
// the exact event-loop position without a wire round-trip. Engine and
// mirror run the same insertion, eviction, and export code, which is
// what keeps a mirror bit-for-bit equal to the worker-side pool.
type Corpus struct {
	seeds []Seed
	max   int
}

// NewCorpus returns an empty corpus holding at most max seeds
// (DefaultMaxCorpus when max <= 0).
func NewCorpus(max int) *Corpus {
	if max <= 0 {
		max = DefaultMaxCorpus
	}
	return &Corpus{max: max}
}

// Len returns the number of seeds held.
func (c *Corpus) Len() int { return len(c.seeds) }

// At returns the seed at index i.
func (c *Corpus) At(i int) Seed { return c.seeds[i] }

// Add inserts s, evicting the seed with the smallest discovery gain
// when the pool is full. Ties keep the earliest-inserted weak seed,
// so insertion order fully determines the pool's contents.
func (c *Corpus) Add(s Seed) {
	if len(c.seeds) >= c.max {
		weakest := 0
		for i, cs := range c.seeds {
			if cs.Gain < c.seeds[weakest].Gain {
				weakest = i
			}
		}
		c.seeds[weakest] = s
		return
	}
	c.seeds = append(c.seeds, s)
}

// Export returns up to max of the highest-gain seeds (the AFL/Peach
// parallel-mode synchronization mechanism). Ties keep the lower index
// (strict > comparison), so the export set and order are deterministic
// functions of insertion order.
func (c *Corpus) Export(max int) []Seed {
	if max <= 0 || len(c.seeds) == 0 {
		return nil
	}
	idx := make([]int, len(c.seeds))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: top-gain seeds first.
	for i := 0; i < len(idx) && i < max; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if c.seeds[idx[j]].Gain > c.seeds[idx[best]].Gain {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if len(idx) > max {
		idx = idx[:max]
	}
	out := make([]Seed, len(idx))
	for i, j := range idx {
		out[i] = c.seeds[j]
	}
	return out
}
