package fuzz

import (
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// A Pit holds the data and state models loaded from one Pit-style XML
// document — the declarative format Peach uses and the paper reuses
// ("we use the same Pit files that specify the data and state models for
// each protocol").
type Pit struct {
	DataModels  map[string]*DataModel
	StateModels map[string]*StateModel
	// StateModelOrder lists the state model names in document order.
	// Callers that need "the" state model of a Pit must go through
	// DefaultStateModel (or this slice) rather than ranging over the
	// StateModels map: map iteration order is randomized, so a Pit with
	// several state models would yield a different model run to run and
	// SPFuzz path partitions would not reproduce.
	StateModelOrder []string
}

// DefaultStateModel returns the Pit's first state model in document
// order, or nil if the document declares none.
func (p *Pit) DefaultStateModel() *StateModel {
	if len(p.StateModelOrder) == 0 {
		return nil
	}
	return p.StateModels[p.StateModelOrder[0]]
}

// ParsePit parses the supported Pit XML subset:
//
//	<Peach>
//	  <DataModel name="M">
//	    <Number name="n" bits="8" value="16" token="true" endian="big"
//	            sizeOf="payload" countOf="" varint="false"/>
//	    <String name="s" value="text"/>
//	    <Blob name="b" valueHex="0a0b" length="4"/>
//	    <Block name="grp"> ...nested elements... </Block>
//	    <Choice name="alt"> ...nested elements... </Choice>
//	  </DataModel>
//	  <StateModel name="SM" initialState="s0">
//	    <State name="s0">
//	      <Action type="output" dataModel="M"/>
//	      <Action type="changeState" to="s1"/>
//	    </State>
//	  </StateModel>
//	</Peach>
func ParsePit(content string) (*Pit, error) {
	dec := xml.NewDecoder(strings.NewReader(content))
	pit := &Pit{
		DataModels:  make(map[string]*DataModel),
		StateModels: make(map[string]*StateModel),
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("fuzz: pit parse: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch start.Name.Local {
		case "Peach":
			// container: descend
		case "DataModel":
			dm, err := parseDataModel(dec, start)
			if err != nil {
				return nil, err
			}
			pit.DataModels[dm.Name] = dm
		case "StateModel":
			sm, err := parseStateModel(dec, start)
			if err != nil {
				return nil, err
			}
			if _, seen := pit.StateModels[sm.Name]; !seen {
				pit.StateModelOrder = append(pit.StateModelOrder, sm.Name)
			}
			pit.StateModels[sm.Name] = sm
		default:
			if err := dec.Skip(); err != nil {
				return nil, fmt.Errorf("fuzz: pit parse: %w", err)
			}
		}
	}
	// Validate in document order so a multi-error document reports the
	// same (first) error every run.
	for _, name := range pit.StateModelOrder {
		if err := pit.StateModels[name].Validate(pit.DataModels); err != nil {
			return nil, err
		}
	}
	return pit, nil
}

func parseDataModel(dec *xml.Decoder, start xml.StartElement) (*DataModel, error) {
	name := attr(start, "name")
	if name == "" {
		return nil, fmt.Errorf("fuzz: DataModel without name")
	}
	children, err := parseElements(dec, start.Name.Local)
	if err != nil {
		return nil, err
	}
	return &DataModel{Name: name, Root: &Element{Kind: KindBlock, Name: name, Children: children}}, nil
}

// parseElements consumes child elements until the close tag of the
// enclosing element named encl.
func parseElements(dec *xml.Decoder, encl string) ([]*Element, error) {
	var out []*Element
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("fuzz: pit parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.EndElement:
			if t.Name.Local == encl {
				return out, nil
			}
		case xml.StartElement:
			el, err := parseElement(dec, t)
			if err != nil {
				return nil, err
			}
			out = append(out, el)
		}
	}
}

func parseElement(dec *xml.Decoder, start xml.StartElement) (*Element, error) {
	e := &Element{Name: attr(start, "name")}
	switch start.Name.Local {
	case "Number":
		e.Kind = KindNumber
		e.Bits = attrInt(start, "bits", 8)
		e.Value = uint64(attrInt(start, "value", 0))
		if attr(start, "endian") == "little" {
			e.Endian = LittleEndian
		}
		e.Token = attr(start, "token") == "true"
		e.SizeOf = attr(start, "sizeOf")
		e.CountOf = attr(start, "countOf")
		e.Varint = attr(start, "varint") == "true"
		if err := dec.Skip(); err != nil {
			return nil, err
		}
	case "String":
		e.Kind = KindString
		e.Data = []byte(attr(start, "value"))
		e.Token = attr(start, "token") == "true"
		if err := dec.Skip(); err != nil {
			return nil, err
		}
	case "Blob":
		e.Kind = KindBlob
		if hx := attr(start, "valueHex"); hx != "" {
			data, err := hex.DecodeString(hx)
			if err != nil {
				return nil, fmt.Errorf("fuzz: Blob %q valueHex: %w", e.Name, err)
			}
			e.Data = data
		} else if n := attrInt(start, "length", 0); n > 0 {
			e.Data = make([]byte, n)
		}
		e.Token = attr(start, "token") == "true"
		if err := dec.Skip(); err != nil {
			return nil, err
		}
	case "Block", "Choice":
		if start.Name.Local == "Block" {
			e.Kind = KindBlock
		} else {
			e.Kind = KindChoice
		}
		children, err := parseElements(dec, start.Name.Local)
		if err != nil {
			return nil, err
		}
		e.Children = children
	default:
		return nil, fmt.Errorf("fuzz: unsupported pit element <%s>", start.Name.Local)
	}
	return e, nil
}

func parseStateModel(dec *xml.Decoder, start xml.StartElement) (*StateModel, error) {
	sm := &StateModel{
		Name:    attr(start, "name"),
		Initial: attr(start, "initialState"),
		States:  make(map[string]*State),
	}
	if sm.Name == "" {
		return nil, fmt.Errorf("fuzz: StateModel without name")
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("fuzz: pit parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.EndElement:
			if t.Name.Local == "StateModel" {
				return sm, nil
			}
		case xml.StartElement:
			if t.Name.Local != "State" {
				return nil, fmt.Errorf("fuzz: unexpected <%s> in StateModel", t.Name.Local)
			}
			st, err := parseState(dec, t)
			if err != nil {
				return nil, err
			}
			sm.States[st.Name] = st
		}
	}
}

func parseState(dec *xml.Decoder, start xml.StartElement) (*State, error) {
	st := &State{Name: attr(start, "name")}
	if st.Name == "" {
		return nil, fmt.Errorf("fuzz: State without name")
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("fuzz: pit parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.EndElement:
			if t.Name.Local == "State" {
				return st, nil
			}
		case xml.StartElement:
			if t.Name.Local != "Action" {
				return nil, fmt.Errorf("fuzz: unexpected <%s> in State", t.Name.Local)
			}
			var a Action
			switch attr(t, "type") {
			case "output":
				a = Action{Kind: ActionOutput, DataModel: attr(t, "dataModel")}
			case "input":
				a = Action{Kind: ActionInput}
			case "changeState":
				a = Action{Kind: ActionChangeState, To: attr(t, "to")}
			default:
				return nil, fmt.Errorf("fuzz: unsupported action type %q", attr(t, "type"))
			}
			st.Actions = append(st.Actions, a)
			if err := dec.Skip(); err != nil {
				return nil, err
			}
		}
	}
}

func attr(e xml.StartElement, name string) string {
	for _, a := range e.Attr {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}

func attrInt(e xml.StartElement, name string, def int) int {
	s := attr(e, name)
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}
