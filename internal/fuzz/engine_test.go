package fuzz

import (
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
)

// toyTarget explores more edges for more diverse bytes, and crashes when
// a message starts with 0xde 0xad.
type toyTarget struct{ runs int }

func (tt *toyTarget) Run(seq [][]byte, tr *coverage.Trace) *bugs.Crash {
	tt.runs++
	for i, msg := range seq {
		if len(msg) >= 2 && msg[0] == 0xde && msg[1] == 0xad {
			return &bugs.Crash{Protocol: "TOY", Kind: bugs.SEGV, Function: "handle"}
		}
		for j, b := range msg {
			if j > 6 {
				break
			}
			tr.Edge(uint32(i*8+j), uint64(b))
		}
	}
	return nil
}

func toyConfig(seed int64) Config {
	models := map[string]*DataModel{
		"A": {Name: "A", Root: Block("A", Num("hdr", 8, 1), Str("body", "abc"))},
		"B": {Name: "B", Root: Block("B", Num("hdr", 8, 2), Blob("pay", []byte{7, 8, 9}))},
	}
	sm := &StateModel{
		Name:    "sm",
		Initial: "s0",
		States: map[string]*State{
			"s0": {Name: "s0", Actions: []Action{
				{Kind: ActionOutput, DataModel: "A"},
				{Kind: ActionChangeState, To: "s1"},
			}},
			"s1": {Name: "s1", Actions: []Action{
				{Kind: ActionOutput, DataModel: "B"},
			}},
		},
	}
	return Config{Models: models, StateModel: sm, Seed: seed}
}

func TestEngineCoverageGrows(t *testing.T) {
	e := NewEngine(toyConfig(1), &toyTarget{})
	for i := 0; i < 200; i++ {
		e.Step()
	}
	if e.Coverage() == 0 {
		t.Fatal("no coverage after 200 steps")
	}
	st := e.Stats()
	if st.Execs != 200 {
		t.Fatalf("execs = %d", st.Execs)
	}
	if st.CorpusSize == 0 {
		t.Fatal("corpus empty despite coverage growth")
	}
	if st.BytesSent == 0 {
		t.Fatal("no bytes recorded")
	}
}

func TestEngineCoverageMonotone(t *testing.T) {
	e := NewEngine(toyConfig(2), &toyTarget{})
	prev := 0
	for i := 0; i < 100; i++ {
		res := e.Step()
		cur := e.Coverage()
		if cur < prev {
			t.Fatalf("coverage shrank: %d -> %d", prev, cur)
		}
		if res.NewEdges != cur-prev {
			t.Fatalf("NewEdges %d inconsistent with delta %d", res.NewEdges, cur-prev)
		}
		prev = cur
	}
}

func TestEngineFindsCrash(t *testing.T) {
	// A target that crashes on ANY message whose first byte is 0xff —
	// reachable by number mutation of the header.
	target := TargetFunc(func(seq [][]byte, tr *coverage.Trace) *bugs.Crash {
		for _, msg := range seq {
			if len(msg) > 0 {
				tr.Edge(1, uint64(msg[0]))
				if msg[0] == 0xff {
					return &bugs.Crash{Protocol: "TOY", Kind: bugs.SEGV, Function: "f"}
				}
			}
		}
		return nil
	})
	e := NewEngine(toyConfig(3), target)
	found := false
	for i := 0; i < 3000 && !found; i++ {
		if e.Step().Crash != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("crash never found in 3000 steps")
	}
	if e.Stats().Crashes == 0 {
		t.Fatal("crash not counted")
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() (int, int) {
		e := NewEngine(toyConfig(42), &toyTarget{})
		for i := 0; i < 150; i++ {
			e.Step()
		}
		return e.Coverage(), e.Stats().CorpusSize
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
}

func TestEngineFixedPaths(t *testing.T) {
	cfg := toyConfig(5)
	cfg.FixedPaths = []Path{{Models: []string{"A"}}}
	cfg.GenProb = 1.0 // always generate; never havoc
	seen := map[int]bool{}
	target := TargetFunc(func(seq [][]byte, tr *coverage.Trace) *bugs.Crash {
		seen[len(seq)] = true
		return nil
	})
	e := NewEngine(cfg, target)
	for i := 0; i < 50; i++ {
		e.Step()
	}
	if !seen[1] || seen[2] {
		t.Fatalf("fixed path ignored: sequence lengths %v", seen)
	}
}

func TestEngineSeedExportImport(t *testing.T) {
	e := NewEngine(toyConfig(6), &toyTarget{})
	for i := 0; i < 300; i++ {
		e.Step()
	}
	seeds := e.ExportSeeds(5)
	if len(seeds) == 0 {
		t.Fatal("no seeds exported")
	}
	if len(seeds) > 5 {
		t.Fatalf("exported %d seeds, cap 5", len(seeds))
	}
	for i := 1; i < len(seeds); i++ {
		if seeds[i].Gain > seeds[i-1].Gain {
			t.Fatal("seeds not sorted by descending gain")
		}
	}
	if e.ExportSeeds(0) != nil {
		t.Fatal("ExportSeeds(0) should be nil")
	}

	sibling := NewEngine(toyConfig(7), &toyTarget{})
	before := sibling.Stats().CorpusSize
	sibling.ImportSeeds(seeds)
	if sibling.Stats().CorpusSize != before+len(seeds) {
		t.Fatal("import did not grow corpus")
	}
}

func TestEngineCorpusEviction(t *testing.T) {
	cfg := toyConfig(8)
	cfg.MaxCorpus = 4
	e := NewEngine(cfg, &toyTarget{})
	for i := 0; i < 500; i++ {
		e.Step()
	}
	if got := e.Stats().CorpusSize; got > 4 {
		t.Fatalf("corpus %d exceeds cap 4", got)
	}
}

func TestEngineNoStateModel(t *testing.T) {
	cfg := Config{
		Models: map[string]*DataModel{
			"only": {Name: "only", Root: Block("only", Num("b", 8, 3))},
		},
		Seed: 9,
	}
	e := NewEngine(cfg, &toyTarget{})
	res := e.Step()
	if res.Messages != 1 {
		t.Fatalf("messages = %d, want 1 standalone packet", res.Messages)
	}
}

func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine(toyConfig(10), &toyTarget{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func TestEngineSplice(t *testing.T) {
	e := NewEngine(toyConfig(11), &toyTarget{})
	a := Seed{Msgs: [][]byte{{1}, {2}, {3}}}
	b := Seed{Msgs: [][]byte{{4}, {5}}}
	for i := 0; i < 100; i++ {
		seq := e.splice(a, b)
		if len(seq) == 0 || len(seq) > 16 {
			t.Fatalf("splice length %d out of range", len(seq))
		}
	}
	// Originals must not be aliased by splice output.
	seq := e.splice(a, b)
	for _, m := range seq {
		if len(m) > 0 {
			m[0] = 0xEE
		}
	}
	if a.Msgs[0][0] == 0xEE || b.Msgs[0][0] == 0xEE {
		t.Fatal("splice aliases seed storage")
	}
}

func TestEngineSpliceEmptySeeds(t *testing.T) {
	e := NewEngine(toyConfig(12), &toyTarget{})
	// Must not panic on degenerate seeds.
	e.splice(Seed{}, Seed{})
	e.splice(Seed{Msgs: [][]byte{{1}}}, Seed{})
}
