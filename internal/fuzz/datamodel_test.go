package fuzz

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestNumberSerialization(t *testing.T) {
	cases := []struct {
		e    *Element
		want []byte
	}{
		{Num("a", 8, 0xab), []byte{0xab}},
		{Num("a", 16, 0x0102), []byte{0x01, 0x02}},
		{Num("a", 32, 0x01020304), []byte{0x01, 0x02, 0x03, 0x04}},
		{NumLE("a", 16, 0x0102), []byte{0x02, 0x01}},
		{NumLE("a", 32, 0x01020304), []byte{0x04, 0x03, 0x02, 0x01}},
	}
	for _, c := range cases {
		buf := appendElement(nil, c.e)
		if !bytes.Equal(buf, c.want) {
			t.Errorf("serialize(%+v) = %x, want %x", c.e, buf, c.want)
		}
	}
}

func TestVarintSerialization(t *testing.T) {
	e := &Element{Kind: KindNumber, Varint: true, Value: 321}
	buf := appendElement(nil, e)
	if !bytes.Equal(buf, []byte{0xc1, 0x02}) {
		t.Fatalf("varint 321 = %x", buf)
	}
}

func TestBlockAndStringSerialization(t *testing.T) {
	m := &DataModel{Name: "m", Root: Block("root",
		Token("type", 8, 0x10),
		Str("id", "abc"),
		Blob("pay", []byte{1, 2}),
	)}
	msg := m.NewMessage(testRand())
	got := msg.Serialize()
	want := []byte{0x10, 'a', 'b', 'c', 1, 2}
	if !bytes.Equal(got, want) {
		t.Fatalf("Serialize = %x, want %x", got, want)
	}
}

func TestSizeOfRelation(t *testing.T) {
	m := &DataModel{Name: "m", Root: Block("root",
		SizeOf("len", 16, "payload"),
		Str("payload", "hello"),
	)}
	msg := m.NewMessage(testRand())
	got := msg.Serialize()
	want := []byte{0x00, 0x05, 'h', 'e', 'l', 'l', 'o'}
	if !bytes.Equal(got, want) {
		t.Fatalf("Serialize = %x, want %x", got, want)
	}
	// After mutating payload, the size re-resolves.
	msg.Find("payload").Data = []byte("hi")
	got = msg.Serialize()
	if got[1] != 2 {
		t.Fatalf("size not recomputed: %x", got)
	}
	// A broken relation survives serialization untouched.
	lenField := msg.Find("len")
	lenField.SizeBroken = true
	lenField.Value = 99
	got = msg.Serialize()
	if got[1] != 99 {
		t.Fatalf("broken size was fixed up: %x", got)
	}
}

func TestVarintOfRelation(t *testing.T) {
	m := &DataModel{Name: "m", Root: Block("root",
		VarintOf("rem", "body"),
		Blob("body", make([]byte, 200)),
	)}
	msg := m.NewMessage(testRand())
	got := msg.Serialize()
	// 200 as varint = 0xC8 0x01.
	if got[0] != 0xc8 || got[1] != 0x01 {
		t.Fatalf("varint size prefix = %x", got[:2])
	}
	if len(got) != 2+200 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestCountOfRelation(t *testing.T) {
	root := Block("root",
		&Element{Kind: KindNumber, Name: "count", Bits: 8, CountOf: "items"},
		Block("items", Num("i1", 8, 1), Num("i2", 8, 2), Num("i3", 8, 3)),
	)
	msg := (&DataModel{Name: "m", Root: root}).NewMessage(testRand())
	got := msg.Serialize()
	if got[0] != 3 {
		t.Fatalf("count = %d, want 3", got[0])
	}
}

func TestChoiceSelection(t *testing.T) {
	m := &DataModel{Name: "m", Root: Block("root",
		Choice("alt",
			Num("a", 8, 0xaa),
			Num("b", 8, 0xbb),
		),
	)}
	seen := map[byte]bool{}
	r := testRand()
	for i := 0; i < 50; i++ {
		msg := m.NewMessage(r)
		seen[msg.Serialize()[0]] = true
	}
	if !seen[0xaa] || !seen[0xbb] {
		t.Fatalf("choice never selected both alternatives: %v", seen)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := &DataModel{Name: "m", Root: Block("root", Str("s", "orig"), Num("n", 8, 5))}
	msg := m.NewMessage(testRand())
	cl := msg.Clone()
	cl.Find("s").Data = []byte("changed")
	cl.Find("n").Value = 9
	if string(msg.Find("s").Data) != "orig" || msg.Find("n").Value != 5 {
		t.Fatal("clone aliases original")
	}
	// NewMessage must not alias the model's defaults either.
	msg.Find("s").Data[0] = 'X'
	if string(m.Root.Children[0].Data) != "orig" {
		t.Fatal("message aliases model defaults")
	}
}

func TestLeavesHonorChoice(t *testing.T) {
	m := &DataModel{Name: "m", Root: Block("root",
		Num("hdr", 8, 1),
		Choice("alt", Str("a", "x"), Str("b", "y")),
	)}
	msg := m.NewMessage(testRand())
	leaves := msg.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("leaves = %d, want 2 (hdr + selected alternative)", len(leaves))
	}
}

func TestFindMissing(t *testing.T) {
	m := &DataModel{Name: "m", Root: Block("root", Num("n", 8, 0))}
	if m.NewMessage(testRand()).Find("ghost") != nil {
		t.Fatal("Find(ghost) returned element")
	}
}

func TestElementKindString(t *testing.T) {
	if KindNumber.String() != "Number" || KindChoice.String() != "Choice" {
		t.Fatal("kind names wrong")
	}
	if ElementKind(42).String() == "" {
		t.Fatal("out-of-range kind empty")
	}
}

// Property: serialization length equals the sum of leaf widths for
// fixed-width models, for any instantiation.
func TestQuickSerializeLength(t *testing.T) {
	f := func(v1 uint8, v2 uint16, s string, blob []byte) bool {
		if len(s) > 256 || len(blob) > 256 {
			return true
		}
		m := &DataModel{Name: "m", Root: Block("root",
			Num("a", 8, uint64(v1)),
			Num("b", 16, uint64(v2)),
			Str("s", s),
			Blob("p", blob),
		)}
		msg := m.NewMessage(testRand())
		return len(msg.Serialize()) == 1+2+len(s)+len(blob)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SizeOf always matches the serialized target length when the
// relation is intact, regardless of mutations to the target.
func TestQuickSizeOfConsistent(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		m := &DataModel{Name: "m", Root: Block("root",
			SizeOf("len", 16, "payload"),
			Blob("payload", payload),
		)}
		msg := m.NewMessage(testRand())
		out := msg.Serialize()
		got := int(out[0])<<8 | int(out[1])
		return got == len(payload) && len(out) == 2+len(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
