package fuzz

import (
	"math/rand"
	"testing"
)

func TestMutatorsNeverTouchTokens(t *testing.T) {
	r := testRand()
	for _, m := range DefaultMutators() {
		tok := Token("magic", 8, 0x7f)
		if m.Applicable(tok) {
			t.Errorf("%s applicable to token number", m.Name())
		}
		tokStr := Str("fixed", "MAGIC")
		tokStr.Token = true
		if m.Applicable(tokStr) {
			t.Errorf("%s applicable to token string", m.Name())
		}
	}
	_ = r
}

func TestNumberBoundaryStaysInWidth(t *testing.T) {
	r := testRand()
	e := Num("n", 8, 5)
	for i := 0; i < 100; i++ {
		(numberBoundary{}).Mutate(e, r)
		// Boundary values may exceed the width on purpose (over-wide
		// constants get truncated at serialization); serialization must
		// still produce exactly one byte.
		buf := appendNumber(nil, e)
		if len(buf) != 1 {
			t.Fatalf("8-bit number serialized to %d bytes", len(buf))
		}
	}
}

func TestNumberRandomMasksWidth(t *testing.T) {
	r := testRand()
	e := Num("n", 16, 0)
	for i := 0; i < 100; i++ {
		(numberRandom{}).Mutate(e, r)
		if e.Value > 0xffff {
			t.Fatalf("16-bit random value %#x exceeds width", e.Value)
		}
	}
}

func TestSizeBreakerOnlyAppliesToRelations(t *testing.T) {
	sb := sizeBreaker{}
	if sb.Applicable(Num("plain", 8, 0)) {
		t.Fatal("sizeBreaker applicable to plain number")
	}
	rel := SizeOf("len", 16, "body")
	if !sb.Applicable(rel) {
		t.Fatal("sizeBreaker not applicable to size field")
	}
	sb.Mutate(rel, testRand())
	if !rel.SizeBroken {
		t.Fatal("sizeBreaker did not mark relation broken")
	}
}

func TestStringMutators(t *testing.T) {
	r := testRand()

	e := Str("s", "ab")
	(stringRepeat{}).Mutate(e, r)
	if len(e.Data) < 4 || len(e.Data)%2 != 0 {
		t.Fatalf("StringRepeat produced %d bytes", len(e.Data))
	}

	e = Str("s", "ab")
	(stringEmpty{}).Mutate(e, r)
	if len(e.Data) != 0 {
		t.Fatal("StringEmpty left data")
	}
	if (stringEmpty{}).Applicable(e) {
		t.Fatal("StringEmpty applicable to already-empty string")
	}

	e = Str("s", "ab")
	(stringSpecial{}).Mutate(e, r)
	found := false
	for _, sp := range specialStrings {
		if string(e.Data) == string(sp) {
			found = true
		}
	}
	if !found {
		t.Fatalf("StringSpecial produced unexpected %q", e.Data)
	}
}

func TestBlobMutators(t *testing.T) {
	r := testRand()

	e := Blob("b", []byte{0, 0, 0, 0})
	(blobBitFlip{}).Mutate(e, r)
	nonzero := false
	for _, b := range e.Data {
		if b != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("BlobBitFlip changed nothing")
	}

	e = Blob("b", []byte{1, 2, 3, 4})
	(blobTruncate{}).Mutate(e, r)
	if len(e.Data) >= 4 {
		t.Fatalf("BlobTruncate len = %d", len(e.Data))
	}

	e = Blob("b", []byte{1, 2})
	(blobDuplicate{}).Mutate(e, r)
	if len(e.Data) < 4 || len(e.Data)%2 != 0 {
		t.Fatalf("BlobDuplicate len = %d", len(e.Data))
	}

	e = Blob("b", nil)
	(blobInsert{}).Mutate(e, r)
	if len(e.Data) == 0 {
		t.Fatal("BlobInsert into empty blob added nothing")
	}
}

func TestMutateMessageAppliesAtLeastOne(t *testing.T) {
	m := &DataModel{Name: "m", Root: Block("root",
		Token("type", 8, 0x10),
		Num("flags", 8, 0),
		Str("id", "client"),
	)}
	r := testRand()
	changed := 0
	for i := 0; i < 50; i++ {
		msg := m.NewMessage(r)
		before := append([]byte(nil), msg.Serialize()...)
		if MutateMessage(msg, DefaultMutators(), r, 3) == 0 {
			continue
		}
		after := msg.Serialize()
		if string(before) != string(after) {
			changed++
		}
		// The token byte must always survive.
		if after[0] != 0x10 {
			t.Fatalf("token byte mutated: %x", after)
		}
	}
	if changed < 25 {
		t.Fatalf("mutation changed output only %d/50 times", changed)
	}
}

func TestMutateMessageTokenOnlyModel(t *testing.T) {
	m := &DataModel{Name: "m", Root: Block("root", Token("t", 8, 1))}
	msg := m.NewMessage(testRand())
	if got := MutateMessage(msg, DefaultMutators(), testRand(), 3); got != 0 {
		t.Fatalf("applied %d mutations to token-only message", got)
	}
}

func TestMutatorNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range DefaultMutators() {
		if m.Name() == "" || seen[m.Name()] {
			t.Fatalf("duplicate or empty mutator name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestMutatorsDeterministicPerSeed(t *testing.T) {
	build := func() []byte {
		m := &DataModel{Name: "m", Root: Block("root",
			Num("a", 16, 7), Str("s", "xyz"), Blob("b", []byte{9, 9, 9}),
		)}
		r := rand.New(rand.NewSource(99))
		msg := m.NewMessage(r)
		MutateMessage(msg, DefaultMutators(), r, 4)
		return msg.Serialize()
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Fatal("mutation not deterministic for fixed seed")
	}
}
