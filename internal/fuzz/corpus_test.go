package fuzz

import (
	"bytes"
	"testing"
)

func seedOf(gain int, tag byte) Seed {
	return Seed{Msgs: [][]byte{{tag}}, Gain: gain}
}

func TestCorpusAddEvictsWeakest(t *testing.T) {
	c := NewCorpus(3)
	c.Add(seedOf(5, 'a'))
	c.Add(seedOf(1, 'b'))
	c.Add(seedOf(3, 'c'))
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Pool full: the gain-1 seed at index 1 must give way.
	c.Add(seedOf(9, 'd'))
	if c.Len() != 3 {
		t.Fatalf("len after eviction = %d, want 3", c.Len())
	}
	gains := []int{c.At(0).Gain, c.At(1).Gain, c.At(2).Gain}
	if gains[0] != 5 || gains[1] != 9 || gains[2] != 3 {
		t.Fatalf("pool after eviction = %v, want [5 9 3]", gains)
	}
	// Gain ties evict the earliest weak seed, so two pools built by the
	// same Add sequence stay identical slot for slot.
	c.Add(seedOf(3, 'e'))
	if got := c.At(2).Msgs[0][0]; got != 'e' {
		t.Fatalf("tie eviction replaced slot holding %q, want 'c' slot", got)
	}
}

func TestCorpusExportOrderDeterministic(t *testing.T) {
	c := NewCorpus(0) // DefaultMaxCorpus
	c.Add(seedOf(2, 'a'))
	c.Add(seedOf(7, 'b'))
	c.Add(seedOf(7, 'c'))
	c.Add(seedOf(4, 'd'))
	got := c.Export(3)
	if len(got) != 3 {
		t.Fatalf("export len = %d, want 3", len(got))
	}
	// Highest gain first; the 7/7 tie keeps insertion order.
	want := []byte{'b', 'c', 'd'}
	for i, s := range got {
		if !bytes.Equal(s.Msgs[0], []byte{want[i]}) {
			t.Fatalf("export[%d] = %q, want %q", i, s.Msgs[0], want[i])
		}
	}
	if c.Export(0) != nil || NewCorpus(4).Export(3) != nil {
		t.Fatal("empty exports must be nil")
	}
}

// TestCorpusMirrorsEngine pins the property the distributed coordinator
// relies on: replaying an engine's corpus additions and imports into a
// standalone Corpus reproduces the engine's pool exactly, so mirror
// exports equal worker exports.
func TestCorpusMirrorsEngine(t *testing.T) {
	cfg := toyConfig(1)
	cfg.MaxCorpus = 8
	eng := NewEngine(cfg, &toyTarget{})
	mirror := NewCorpus(8)
	for i := 0; i < 200; i++ {
		step := eng.Step()
		if step.NewEdges > 0 {
			mirror.Add(eng.LastSeed())
		}
	}
	a, b := eng.ExportSeeds(4), mirror.Export(4)
	if len(a) != len(b) {
		t.Fatalf("export sizes diverged: engine %d, mirror %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Gain != b[i].Gain || len(a[i].Msgs) != len(b[i].Msgs) {
			t.Fatalf("export %d diverged: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Msgs {
			if !bytes.Equal(a[i].Msgs[j], b[i].Msgs[j]) {
				t.Fatalf("export %d msg %d diverged", i, j)
			}
		}
	}
}
