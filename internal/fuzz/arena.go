package fuzz

// An Arena bulk-allocates the short-lived object graph one engine
// iteration builds — element trees cloned from data models, their child
// pointer slices, and copied default payloads — and recycles all of it
// with a single Reset. Nothing allocated from an arena may outlive the
// next Reset: the engine serializes each message to wire bytes before
// resetting, and only those bytes (deep-copied when kept as a corpus
// seed) escape the iteration. After a few warm-up iterations the chunk
// lists stop growing and the generation path performs zero heap
// allocations per message.
//
// An Arena is not safe for concurrent use; each engine owns one.
type Arena struct {
	elemChunks [][]Element
	elemChunk  int // index of the active element chunk
	elemUsed   int // elements handed out from the active chunk

	ptrChunks [][]*Element
	ptrChunk  int
	ptrUsed   int

	byteChunks [][]byte
	byteChunk  int
	byteUsed   int

	// Scratch reused by serialization and mutation: the active-leaf list
	// and the size-relation measurement buffer. Reset leaves them alone —
	// their callers truncate before use.
	leaves  []*Element
	sizeBuf []byte
}

const (
	arenaElemChunk = 256
	arenaPtrChunk  = 512
	arenaByteChunk = 8192
)

// NewArena returns an empty arena. Chunks are allocated lazily on first
// use and retained across Resets.
func NewArena() *Arena { return &Arena{} }

// Reset recycles everything allocated since the previous Reset. Chunk
// storage is retained, so a warmed-up arena allocates nothing.
func (a *Arena) Reset() {
	a.elemChunk, a.elemUsed = 0, 0
	a.ptrChunk, a.ptrUsed = 0, 0
	a.byteChunk, a.byteUsed = 0, 0
}

// newElement hands out one element. Contents are unspecified; callers
// must overwrite every field (cloneInto copies the whole struct).
func (a *Arena) newElement() *Element {
	if a.elemChunk == len(a.elemChunks) {
		a.elemChunks = append(a.elemChunks, make([]Element, arenaElemChunk))
	}
	chunk := a.elemChunks[a.elemChunk]
	if a.elemUsed == len(chunk) {
		a.elemChunk++
		a.elemUsed = 0
		if a.elemChunk == len(a.elemChunks) {
			a.elemChunks = append(a.elemChunks, make([]Element, arenaElemChunk))
		}
		chunk = a.elemChunks[a.elemChunk]
	}
	e := &chunk[a.elemUsed]
	a.elemUsed++
	return e
}

// children hands out a child-pointer slice of length n with clamped
// capacity, so an append by a caller can never bleed into a neighbor.
func (a *Arena) children(n int) []*Element {
	if n > arenaPtrChunk {
		return make([]*Element, n)
	}
	if a.ptrChunk == len(a.ptrChunks) {
		a.ptrChunks = append(a.ptrChunks, make([]*Element, arenaPtrChunk))
	}
	if a.ptrUsed+n > arenaPtrChunk {
		a.ptrChunk++
		a.ptrUsed = 0
		if a.ptrChunk == len(a.ptrChunks) {
			a.ptrChunks = append(a.ptrChunks, make([]*Element, arenaPtrChunk))
		}
	}
	chunk := a.ptrChunks[a.ptrChunk]
	s := chunk[a.ptrUsed : a.ptrUsed+n : a.ptrUsed+n]
	a.ptrUsed += n
	return s
}

// copyBytes copies src into arena storage with clamped capacity. Like
// the heap clone path it returns nil for empty input, so cloned trees
// stay structurally identical to Element.Clone output.
func (a *Arena) copyBytes(src []byte) []byte {
	n := len(src)
	if n == 0 {
		return nil
	}
	if n > arenaByteChunk {
		return append([]byte(nil), src...)
	}
	if a.byteChunk == len(a.byteChunks) {
		a.byteChunks = append(a.byteChunks, make([]byte, arenaByteChunk))
	}
	if a.byteUsed+n > arenaByteChunk {
		a.byteChunk++
		a.byteUsed = 0
		if a.byteChunk == len(a.byteChunks) {
			a.byteChunks = append(a.byteChunks, make([]byte, arenaByteChunk))
		}
	}
	chunk := a.byteChunks[a.byteChunk]
	s := chunk[a.byteUsed : a.byteUsed+n : a.byteUsed+n]
	a.byteUsed += n
	copy(s, src)
	return s
}

// cloneInto deep-copies the element tree into arena storage, matching
// Element.Clone field for field.
func cloneInto(e *Element, a *Arena) *Element {
	c := a.newElement()
	*c = *e
	if e.Data != nil {
		c.Data = a.copyBytes(e.Data)
	}
	if e.Children != nil {
		c.Children = a.children(len(e.Children))
		for i, ch := range e.Children {
			c.Children[i] = cloneInto(ch, a)
		}
	}
	return c
}
