package fuzz

import (
	"strings"
	"testing"
)

// linearSM: s0 --connect--> s1 --publish--> end, with an optional branch
// s1 --subscribe--> s2 --publish--> end.
func linearSM() *StateModel {
	return &StateModel{
		Name:    "sm",
		Initial: "s0",
		States: map[string]*State{
			"s0": {Name: "s0", Actions: []Action{
				{Kind: ActionOutput, DataModel: "Connect"},
				{Kind: ActionChangeState, To: "s1"},
			}},
			"s1": {Name: "s1", Actions: []Action{
				{Kind: ActionOutput, DataModel: "Publish"},
				{Kind: ActionChangeState, To: "s2"},
				{Kind: ActionChangeState, To: "end"},
			}},
			"s2": {Name: "s2", Actions: []Action{
				{Kind: ActionOutput, DataModel: "Subscribe"},
			}},
			"end": {Name: "end", Actions: []Action{
				{Kind: ActionOutput, DataModel: "Disconnect"},
			}},
		},
	}
}

func TestValidate(t *testing.T) {
	sm := linearSM()
	models := map[string]*DataModel{
		"Connect": {}, "Publish": {}, "Subscribe": {}, "Disconnect": {},
	}
	if err := sm.Validate(models); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}

	bad := linearSM()
	bad.Initial = "ghost"
	if err := bad.Validate(nil); err == nil {
		t.Fatal("missing initial state accepted")
	}

	bad2 := linearSM()
	bad2.States["s0"].Actions[1].To = "ghost"
	if err := bad2.Validate(nil); err == nil {
		t.Fatal("dangling transition accepted")
	}

	bad3 := linearSM()
	if err := bad3.Validate(map[string]*DataModel{}); err == nil {
		t.Fatal("missing data model accepted")
	}
}

func TestWalkStartsAtInitial(t *testing.T) {
	sm := linearSM()
	r := testRand()
	for i := 0; i < 20; i++ {
		models := sm.Walk(r, 10)
		if len(models) == 0 || models[0] != "Connect" {
			t.Fatalf("walk = %v, must start with Connect", models)
		}
		last := models[len(models)-1]
		if last != "Subscribe" && last != "Disconnect" {
			t.Fatalf("walk = %v, must end at a terminal state", models)
		}
	}
}

func TestWalkBoundsCycles(t *testing.T) {
	sm := &StateModel{
		Name:    "loop",
		Initial: "a",
		States: map[string]*State{
			"a": {Name: "a", Actions: []Action{
				{Kind: ActionOutput, DataModel: "M"},
				{Kind: ActionChangeState, To: "a"},
			}},
		},
	}
	models := sm.Walk(testRand(), 5)
	if len(models) != 5 {
		t.Fatalf("cyclic walk produced %d outputs, want 5 (bounded)", len(models))
	}
}

func TestPathsEnumeratesBranches(t *testing.T) {
	sm := linearSM()
	paths := sm.Paths(10, 100)
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2 distinct", len(paths))
	}
	joined := make([]string, len(paths))
	for i, p := range paths {
		joined[i] = strings.Join(p.Models, ">")
	}
	want := map[string]bool{
		"Connect>Publish>Subscribe":  false,
		"Connect>Publish>Disconnect": false,
	}
	for _, j := range joined {
		if _, ok := want[j]; !ok {
			t.Fatalf("unexpected path %q", j)
		}
		want[j] = true
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("path %q not enumerated", p)
		}
	}
}

func TestPathsRespectsLimits(t *testing.T) {
	sm := &StateModel{
		Name:    "wide",
		Initial: "root",
		States: map[string]*State{
			"root": {Name: "root", Actions: []Action{
				{Kind: ActionOutput, DataModel: "A"},
				{Kind: ActionChangeState, To: "b1"},
				{Kind: ActionChangeState, To: "b2"},
				{Kind: ActionChangeState, To: "b3"},
			}},
			"b1": {Name: "b1", Actions: []Action{{Kind: ActionOutput, DataModel: "B1"}}},
			"b2": {Name: "b2", Actions: []Action{{Kind: ActionOutput, DataModel: "B2"}}},
			"b3": {Name: "b3", Actions: []Action{{Kind: ActionOutput, DataModel: "B3"}}},
		},
	}
	if got := len(sm.Paths(10, 2)); got > 2 {
		t.Fatalf("maxPaths ignored: %d paths", got)
	}
	if got := len(sm.Paths(10, 100)); got != 3 {
		t.Fatalf("full enumeration = %d, want 3", got)
	}
}

func TestPathsTerminatesOnCycles(t *testing.T) {
	sm := &StateModel{
		Name:    "cycle",
		Initial: "a",
		States: map[string]*State{
			"a": {Name: "a", Actions: []Action{
				{Kind: ActionOutput, DataModel: "MA"},
				{Kind: ActionChangeState, To: "b"},
			}},
			"b": {Name: "b", Actions: []Action{
				{Kind: ActionOutput, DataModel: "MB"},
				{Kind: ActionChangeState, To: "a"},
			}},
		},
	}
	paths := sm.Paths(20, 50)
	if len(paths) == 0 {
		t.Fatal("cyclic model produced no paths")
	}
	for _, p := range paths {
		if len(p.States) > 20 {
			t.Fatalf("path exceeds depth bound: %v", p.States)
		}
	}
}
