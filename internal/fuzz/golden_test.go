package fuzz

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"testing"

	"cmfuzz/internal/bugs"
	"cmfuzz/internal/coverage"
)

// goldenDigest is the SHA-256 of every byte the golden engine run sends,
// plus its final counters, captured on the pre-optimization dense/allocating
// engine. The pooled, sparse-coverage engine must reproduce it exactly:
// same seeds => byte-identical artifacts is the contract that lets the
// allocation work claim "no observable behavior change".
const goldenDigest = "0d593ecbe4766a0040f083bed8a56019c59779498f08aa223fb264559ded9f66"

// goldenTarget folds every executed message into a running hash and derives
// coverage (and the occasional crash) from the bytes themselves, so the
// digest pins the full exec stream, not just aggregate counters.
type goldenTarget struct {
	h hash.Hash
}

func (g *goldenTarget) Run(seq [][]byte, tr *coverage.Trace) *bugs.Crash {
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(seq)))
	g.h.Write(lenBuf[:])
	var crash *bugs.Crash
	for i, msg := range seq {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(msg)))
		g.h.Write(lenBuf[:])
		g.h.Write(msg)
		for j, b := range msg {
			if j >= 12 {
				break
			}
			tr.Edge(uint32(i*16+j), uint64(b>>4))
		}
		if len(msg) >= 3 && msg[0]^msg[1] == 0x5a && crash == nil {
			crash = &bugs.Crash{Protocol: "GOLD", Kind: bugs.SEGV, Function: "parse"}
		}
	}
	return crash
}

// goldenConfig exercises every data-model feature on the serialization hot
// path: blocks, choices, tokens, fixed-width and varint numbers, size
// relations, strings and blobs, plus a branching state model so Walk draws
// from the rng.
func goldenConfig(seed int64) Config {
	models := map[string]*DataModel{
		"Connect": {Name: "Connect", Root: Block("Connect",
			Token("magic", 16, 0xC0DE),
			Choice("mode",
				Num("plain", 8, 1),
				Block("auth", Num("kind", 8, 2), Str("user", "anon")),
			),
			VarintOf("remlen", "payload"),
			Block("payload", Str("client", "golden-client"), Blob("cookie", []byte{1, 2, 3, 4})),
		)},
		"Publish": {Name: "Publish", Root: Block("Publish",
			Num("hdr", 8, 0x30),
			SizeOf("len", 16, "body"),
			Block("body", Str("topic", "a/b"), NumLE("id", 16, 7), Blob("data", []byte("payload"))),
		)},
		"Ping": {Name: "Ping", Root: Block("Ping", Num("hdr", 8, 0xC0), Num("z", 8, 0))},
	}
	sm := &StateModel{
		Name:    "gold",
		Initial: "init",
		States: map[string]*State{
			"init": {Name: "init", Actions: []Action{
				{Kind: ActionOutput, DataModel: "Connect"},
				{Kind: ActionChangeState, To: "ready"},
			}},
			"ready": {Name: "ready", Actions: []Action{
				{Kind: ActionOutput, DataModel: "Publish"},
				{Kind: ActionChangeState, To: "ready"},
				{Kind: ActionChangeState, To: "idle"},
			}},
			"idle": {Name: "idle", Actions: []Action{
				{Kind: ActionOutput, DataModel: "Ping"},
			}},
		},
	}
	return Config{Models: models, StateModel: sm, Seed: seed, MaxCorpus: 32, MaxWalkSteps: 6}
}

// TestEngineGoldenByteIdentity replays a two-engine campaign slice (steps
// plus periodic seed synchronization, the parallel-mode hot loop) and
// checks the exec stream digest against the pre-optimization capture.
func TestEngineGoldenByteIdentity(t *testing.T) {
	h := sha256.New()
	tgtA := &goldenTarget{h: h}
	tgtB := &goldenTarget{h: h}
	a := NewEngine(goldenConfig(424242), tgtA)
	b := NewEngine(goldenConfig(910910), tgtB)
	for i := 0; i < 1500; i++ {
		a.Step()
		b.Step()
		if i%100 == 99 {
			b.ImportSeeds(a.ExportSeeds(4))
			a.ImportSeeds(b.ExportSeeds(4))
		}
	}
	for _, e := range []*Engine{a, b} {
		st := e.Stats()
		fmt.Fprintf(h, "execs=%d crashes=%d corpus=%d bytes=%d cov=%d\n",
			st.Execs, st.Crashes, st.CorpusSize, st.BytesSent, e.Coverage())
	}
	got := hex.EncodeToString(h.Sum(nil))
	if got != goldenDigest {
		t.Fatalf("engine exec stream diverged from pre-optimization golden\n got: %s\nwant: %s", got, goldenDigest)
	}
}
