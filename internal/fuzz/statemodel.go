package fuzz

import (
	"fmt"
	"math/rand"
)

// ActionKind is the type of a state model action.
type ActionKind int

// The action kinds supported by the state model.
const (
	// ActionOutput sends a message instantiated from a data model.
	ActionOutput ActionKind = iota
	// ActionInput consumes the peer's response (a synchronization point;
	// the synchronous target delivers responses inline, so the action is
	// a modeling artifact kept for Pit fidelity).
	ActionInput
	// ActionChangeState transfers control to another state.
	ActionChangeState
)

// An Action is one step inside a state.
type Action struct {
	Kind      ActionKind
	DataModel string // for ActionOutput
	To        string // for ActionChangeState
}

// A State is a named sequence of actions. Its output actions run in
// order; if it holds one or more change-state actions, one is chosen
// (uniformly, or by an explicit path) and control transfers. A state
// without change-state actions ends the session.
type State struct {
	Name    string
	Actions []Action
}

// A StateModel captures a protocol's interaction flow.
type StateModel struct {
	Name    string
	Initial string
	States  map[string]*State
}

// Validate checks referential integrity: the initial state exists, every
// transition targets a known state, and every output names a model in
// models (skipped when models is nil).
func (sm *StateModel) Validate(models map[string]*DataModel) error {
	if _, ok := sm.States[sm.Initial]; !ok {
		return fmt.Errorf("fuzz: initial state %q undefined", sm.Initial)
	}
	for _, st := range sm.States {
		for _, a := range st.Actions {
			switch a.Kind {
			case ActionChangeState:
				if _, ok := sm.States[a.To]; !ok {
					return fmt.Errorf("fuzz: state %q transitions to undefined state %q", st.Name, a.To)
				}
			case ActionOutput:
				if models != nil {
					if _, ok := models[a.DataModel]; !ok {
						return fmt.Errorf("fuzz: state %q outputs undefined data model %q", st.Name, a.DataModel)
					}
				}
			}
		}
	}
	return nil
}

// Walk performs one randomized traversal from the initial state and
// returns the ordered data-model names to send. maxSteps bounds cyclic
// models.
func (sm *StateModel) Walk(r *rand.Rand, maxSteps int) []string {
	var out []string
	cur := sm.States[sm.Initial]
	for steps := 0; cur != nil && steps < maxSteps; steps++ {
		var transitions []string
		for _, a := range cur.Actions {
			switch a.Kind {
			case ActionOutput:
				out = append(out, a.DataModel)
			case ActionChangeState:
				transitions = append(transitions, a.To)
			}
		}
		if len(transitions) == 0 {
			break
		}
		cur = sm.States[transitions[r.Intn(len(transitions))]]
	}
	return out
}

// A CompiledStateModel is an immutable, walk-optimized view of a
// StateModel: each state's actions are pre-split into its ordered output
// models and resolved transition targets, so a traversal performs no map
// lookups and no per-state slice building. It draws from the rng exactly
// as StateModel.Walk does (one Intn per state with transitions), so
// compiled and uncompiled walks are interchangeable seed for seed.
// Compiled models are read-only and safe for concurrent use.
type CompiledStateModel struct {
	initial *compiledState
}

type compiledState struct {
	models []string         // ActionOutput data models, in action order
	next   []*compiledState // ActionChangeState targets, in action order
}

// Compile builds the walk-optimized view. Transitions to undefined
// states resolve to nil, ending a walk there exactly like Walk's failed
// map lookup.
func (sm *StateModel) Compile() *CompiledStateModel {
	states := make(map[string]*compiledState, len(sm.States))
	for name := range sm.States {
		states[name] = &compiledState{}
	}
	for name, st := range sm.States {
		cs := states[name]
		for _, a := range st.Actions {
			switch a.Kind {
			case ActionOutput:
				cs.models = append(cs.models, a.DataModel)
			case ActionChangeState:
				cs.next = append(cs.next, states[a.To])
			}
		}
	}
	return &CompiledStateModel{initial: states[sm.Initial]}
}

// WalkInto performs one randomized traversal from the initial state,
// appending the ordered data-model names to out and returning the
// extended slice. Passing a reused out[:0] makes steady-state walks
// allocation-free. The rng draw sequence matches StateModel.Walk.
func (c *CompiledStateModel) WalkInto(r *rand.Rand, maxSteps int, out []string) []string {
	cur := c.initial
	for steps := 0; cur != nil && steps < maxSteps; steps++ {
		out = append(out, cur.models...)
		if len(cur.next) == 0 {
			break
		}
		cur = cur.next[r.Intn(len(cur.next))]
	}
	return out
}

// A Path is one concrete traversal: the states visited and the models
// output along the way. SPFuzz partitions the path space across parallel
// instances.
type Path struct {
	States []string
	Models []string
}

// Paths enumerates distinct traversals by depth-first search over the
// branching structure, visiting each state at most twice per path (so
// cyclic models terminate) and returning at most maxPaths paths of at
// most maxDepth states each.
func (sm *StateModel) Paths(maxDepth, maxPaths int) []Path {
	var out []Path
	var dfs func(stateName string, visits map[string]int, states, models []string)
	dfs = func(stateName string, visits map[string]int, states, models []string) {
		if len(out) >= maxPaths || len(states) >= maxDepth {
			if len(states) > 0 && len(out) < maxPaths {
				out = append(out, Path{States: clip(states), Models: clip(models)})
			}
			return
		}
		st, ok := sm.States[stateName]
		if !ok || visits[stateName] >= 2 {
			out = append(out, Path{States: clip(states), Models: clip(models)})
			return
		}
		visits[stateName]++
		defer func() { visits[stateName]-- }()
		states = append(states, stateName)
		var transitions []string
		for _, a := range st.Actions {
			switch a.Kind {
			case ActionOutput:
				models = append(models, a.DataModel)
			case ActionChangeState:
				transitions = append(transitions, a.To)
			}
		}
		if len(transitions) == 0 {
			out = append(out, Path{States: clip(states), Models: clip(models)})
			return
		}
		for _, to := range transitions {
			if len(out) >= maxPaths {
				return
			}
			dfs(to, visits, states, models)
		}
	}
	dfs(sm.Initial, map[string]int{}, nil, nil)
	return dedupPaths(out)
}

func clip(s []string) []string { return append([]string(nil), s...) }

func dedupPaths(in []Path) []Path {
	seen := make(map[string]bool, len(in))
	var out []Path
	for _, p := range in {
		key := fmt.Sprint(p.Models)
		if seen[key] || len(p.Models) == 0 {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	return out
}
