package fuzz

import (
	"bytes"
	"reflect"
	"testing"
)

func arenaTestModel() *DataModel {
	return &DataModel{Name: "T", Root: Block("T",
		Token("magic", 16, 0xBEEF),
		Choice("c",
			Num("n1", 8, 1),
			Block("inner", Str("s", "hello"), Blob("b", []byte{9, 8, 7})),
		),
		VarintOf("len", "pay"),
		Block("pay", Str("id", "client"), NumLE("x", 32, 0xAABBCCDD)),
	)}
}

// TestArenaCloneMatchesHeapClone checks structural equality between
// cloneInto and the heap Clone path for the same template.
func TestArenaCloneMatchesHeapClone(t *testing.T) {
	m := arenaTestModel()
	a := NewArena()
	got := cloneInto(m.Root, a)
	want := m.Root.Clone()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("arena clone differs from heap clone:\n got %+v\nwant %+v", got, want)
	}
}

// TestArenaCloneIsolation verifies mutating an arena-backed clone never
// touches the shared template — same guarantee Element.Clone gives.
func TestArenaCloneIsolation(t *testing.T) {
	m := arenaTestModel()
	orig := m.Root.Clone() // pristine reference
	a := NewArena()
	for round := 0; round < 3; round++ {
		a.Reset()
		c := cloneInto(m.Root, a)
		// Scribble over every byte payload and numeric value in the clone.
		var scribble func(e *Element)
		scribble = func(e *Element) {
			for i := range e.Data {
				e.Data[i] = 0xFF
			}
			e.Value = ^uint64(0)
			for _, ch := range e.Children {
				scribble(ch)
			}
		}
		scribble(c)
		if !reflect.DeepEqual(m.Root, orig) {
			t.Fatalf("round %d: template corrupted by arena clone mutation", round)
		}
	}
}

// TestArenaResetReuse pins chunk recycling: after Reset, the arena hands
// out the same storage again and clones serialize identically.
func TestArenaResetReuse(t *testing.T) {
	m := arenaTestModel()
	a := NewArena()
	r := testRandSeed(5)
	msg := m.NewMessageIn(a, r)
	want := append([]byte(nil), msg.AppendSerialize(a, nil)...)
	first := msg.Root

	a.Reset()
	r2 := testRandSeed(5)
	msg2 := m.NewMessageIn(a, r2)
	got := msg2.AppendSerialize(a, nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-Reset serialization %x != %x", got, want)
	}
	if msg2.Root != first {
		t.Fatal("Reset did not recycle element storage")
	}
}

// TestArenaOversizeFallbacks covers payloads and child lists larger than
// one chunk: they must still clone correctly (via dedicated allocations).
func TestArenaOversizeFallbacks(t *testing.T) {
	big := make([]byte, arenaByteChunk+100)
	for i := range big {
		big[i] = byte(i)
	}
	kids := make([]*Element, arenaPtrChunk+10)
	for i := range kids {
		kids[i] = Num("k", 8, uint64(i))
	}
	root := Block("root", append([]*Element{Blob("big", big)}, kids...)...)
	a := NewArena()
	c := cloneInto(root, a)
	if !reflect.DeepEqual(c, root.Clone()) {
		t.Fatal("oversize clone differs from heap clone")
	}
	c.Children[0].Data[0] = 0xEE
	if big[0] == 0xEE {
		t.Fatal("oversize payload aliased the template")
	}
}

// TestArenaChunkBoundary crosses element/byte/pointer chunk boundaries
// within one generation to exercise the chunk-advance paths.
func TestArenaChunkBoundary(t *testing.T) {
	a := NewArena()
	var elems []*Element
	for i := 0; i < arenaElemChunk*2+7; i++ {
		e := a.newElement()
		*e = Element{Kind: KindNumber, Value: uint64(i)}
		elems = append(elems, e)
	}
	for i, e := range elems {
		if e.Value != uint64(i) {
			t.Fatalf("element %d clobbered: value %d", i, e.Value)
		}
	}
	var bufs [][]byte
	src := bytes.Repeat([]byte{0xAB}, 700)
	for i := 0; i < 30; i++ { // 30*700 > 2 byte chunks
		src[0] = byte(i)
		bufs = append(bufs, a.copyBytes(src))
	}
	for i, b := range bufs {
		if b[0] != byte(i) || len(b) != 700 {
			t.Fatalf("byte chunk %d clobbered", i)
		}
	}
}
