// Package schedule implements Cohesive Grouping and Parallel Allocation
// (paper §III-B2, Algorithm 2): it divides the relation-aware
// configuration model into one cohesive entity group per parallel fuzzing
// instance, maximizing relation weight within groups and minimizing it
// between groups.
//
// Edges are processed in descending weight order. While fewer groups than
// instances exist, an edge between two unassigned entities founds a new
// group; afterwards, unassigned entities join the existing group that
// maximizes the suitability score
//
//	Score(G, C) = (Σ_{C'∈G} w(C, C'))² / |G|
//
// whose squared numerator amplifies strong connections and whose
// denominator balances group sizes. An edge with exactly one assigned
// endpoint pulls the other endpoint into the same group, preserving the
// connection.
package schedule

import (
	"math/rand"
	"sort"

	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/graph"
	"cmfuzz/internal/core/relation"
)

// A Group is one cohesive set of configuration entities destined for one
// parallel fuzzing instance.
type Group struct {
	// Members lists the entity names in the group, sorted.
	Members []string
}

// Allocate implements Algorithm 2. It partitions the nodes of g into at
// most n groups. Isolated entities (no surviving relation edges) are
// distributed afterwards by the same FindBest score, which degenerates to
// size balancing for them.
func Allocate(g *graph.Graph, n int) []Group {
	if n < 1 {
		n = 1
	}
	var groups []map[string]bool
	assigned := make(map[string]int)

	addTo := func(gi int, name string) {
		groups[gi][name] = true
		assigned[name] = gi
	}

	for _, e := range g.SortedEdges() {
		s1, ok1 := assigned[e.A]
		s2, ok2 := assigned[e.B]
		switch {
		case !ok1 && !ok2:
			if len(groups) < n {
				groups = append(groups, map[string]bool{})
				addTo(len(groups)-1, e.A)
				addTo(len(groups)-1, e.B)
			} else {
				for _, c := range []string{e.A, e.B} {
					if _, done := assigned[c]; done {
						continue
					}
					addTo(findBest(g, groups, c), c)
				}
			}
		case ok1 != ok2:
			if ok1 {
				addTo(s1, e.B)
			} else {
				addTo(s2, e.A)
			}
		default:
			// Both endpoints already grouped: the edge's weight has been
			// honored (or irrecoverably split) by earlier, heavier edges.
		}
	}

	// Isolated nodes: seed missing groups first, then balance by score.
	var isolated []string
	for _, name := range g.Nodes() {
		if _, ok := assigned[name]; !ok {
			isolated = append(isolated, name)
		}
	}
	sort.Strings(isolated)
	for _, name := range isolated {
		if len(groups) < n {
			groups = append(groups, map[string]bool{})
			addTo(len(groups)-1, name)
			continue
		}
		addTo(findBest(g, groups, name), name)
	}

	out := make([]Group, len(groups))
	for i, members := range groups {
		out[i].Members = sortedKeys(members)
	}
	return out
}

// Score computes the paper's suitability score of adding entity c to the
// group with the given members: (Σ w(c, c'))² / |G|. An empty group
// scores 0.
func Score(g *graph.Graph, members []string, c string) float64 {
	if len(members) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range members {
		if w, ok := g.Weight(c, m); ok {
			sum += w
		}
	}
	return sum * sum / float64(len(members))
}

// findBest returns the index of the group maximizing Score. Ties break
// toward the smallest group, then the lowest index, so allocation is
// deterministic and balanced.
func findBest(g *graph.Graph, groups []map[string]bool, c string) int {
	bestIdx, bestScore, bestSize := 0, -1.0, int(^uint(0)>>1)
	for i, members := range groups {
		score := Score(g, sortedKeys(members), c)
		size := len(members)
		if score > bestScore || (score == bestScore && size < bestSize) {
			bestIdx, bestScore, bestSize = i, score, size
		}
	}
	return bestIdx
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IntraWeight sums the relation weights of edges whose endpoints share a
// group; InterWeight sums those crossing groups. Together they quantify
// allocation quality (Algorithm 2 maximizes intra, minimizes inter).
func IntraWeight(g *graph.Graph, groups []Group) float64 {
	idx := groupIndex(groups)
	sum := 0.0
	for _, e := range g.Edges() {
		if gi, ok := idx[e.A]; ok {
			if gj, ok2 := idx[e.B]; ok2 && gi == gj {
				sum += e.Weight
			}
		}
	}
	return sum
}

// InterWeight sums relation weights crossing group boundaries.
func InterWeight(g *graph.Graph, groups []Group) float64 {
	idx := groupIndex(groups)
	sum := 0.0
	for _, e := range g.Edges() {
		gi, ok := idx[e.A]
		gj, ok2 := idx[e.B]
		if ok && ok2 && gi != gj {
			sum += e.Weight
		}
	}
	return sum
}

func groupIndex(groups []Group) map[string]int {
	idx := make(map[string]int)
	for i, g := range groups {
		for _, m := range g.Members {
			idx[m] = i
		}
	}
	return idx
}

// GroupAssignment reassembles one group back into a runtime-ready
// configuration (paper §III-B2): it starts from the model defaults and
// applies each in-group pair's best-scoring value combination in
// descending relation-weight order, never overwriting a value set by a
// heavier edge. Entities outside the group keep their defaults, so the
// instance runs a complete, valid configuration that emphasizes its
// assigned subset.
func GroupAssignment(model *configmodel.Model, rel *relation.Result, grp Group) configmodel.Assignment {
	cfg := model.Defaults()
	inGroup := make(map[string]bool, len(grp.Members))
	for _, m := range grp.Members {
		inGroup[m] = true
	}
	type weighted struct {
		pv relation.PairValues
		w  float64
	}
	var pairs []weighted
	for _, e := range rel.Graph.Edges() {
		if !inGroup[e.A] || !inGroup[e.B] {
			continue
		}
		if pv, ok := rel.Best[relation.PairKey(e.A, e.B)]; ok {
			pairs = append(pairs, weighted{pv: pv, w: e.Weight})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		return relation.PairKey(pairs[i].pv.A, pairs[i].pv.B) < relation.PairKey(pairs[j].pv.A, pairs[j].pv.B)
	})
	set := make(map[string]bool)
	for _, p := range pairs {
		if !set[p.pv.A] && p.pv.ValueA != "" {
			cfg[p.pv.A] = p.pv.ValueA
			set[p.pv.A] = true
		}
		if !set[p.pv.B] && p.pv.ValueB != "" {
			cfg[p.pv.B] = p.pv.ValueB
			set[p.pv.B] = true
		}
	}
	// Members without an in-group relation edge still take their best
	// standalone value when it strictly improved startup coverage, so
	// isolated feature toggles distributed into this group are activated
	// rather than left at defaults.
	for _, m := range grp.Members {
		if set[m] {
			continue
		}
		if sv, ok := rel.BestSingle[m]; ok && sv.Gain > 0 && sv.Value != "" {
			cfg[m] = sv.Value
		}
	}
	return cfg
}

// RandomAllocate is the ablation baseline that ignores relations entirely:
// nodes are shuffled with the given seed and dealt into n groups.
func RandomAllocate(g *graph.Graph, n int, seed int64) []Group {
	if n < 1 {
		n = 1
	}
	names := append([]string{}, g.Nodes()...)
	sort.Strings(names)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	groups := make([]Group, n)
	for i, name := range names {
		groups[i%n].Members = append(groups[i%n].Members, name)
	}
	for i := range groups {
		sort.Strings(groups[i].Members)
	}
	return trimEmpty(groups)
}

// RoundRobinAllocate is the ablation baseline that deals nodes into n
// groups in sorted name order.
func RoundRobinAllocate(g *graph.Graph, n int) []Group {
	if n < 1 {
		n = 1
	}
	names := append([]string{}, g.Nodes()...)
	sort.Strings(names)
	groups := make([]Group, n)
	for i, name := range names {
		groups[i%n].Members = append(groups[i%n].Members, name)
	}
	return trimEmpty(groups)
}

func trimEmpty(groups []Group) []Group {
	out := groups[:0]
	for _, g := range groups {
		if len(g.Members) > 0 {
			out = append(out, g)
		}
	}
	return out
}
