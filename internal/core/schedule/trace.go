package schedule

import "cmfuzz/internal/telemetry/trace"

// Instrumented wraps one grouping-strategy invocation in a wall-clock
// schedule.allocate span recording the algorithm, the relation-graph
// size and the resulting group count. The span is purely observational:
// alloc runs unchanged and its groups are returned as-is. A nil parent
// span records nothing.
func Instrumented(parent *trace.Span, algorithm string, nodes int, alloc func() []Group) []Group {
	span := parent.Child("schedule.allocate",
		trace.A("algorithm", algorithm), trace.A("nodes", nodes))
	groups := alloc()
	span.Set("groups", len(groups))
	span.End()
	return groups
}
