package schedule

import (
	"sort"
	"testing"
	"testing/quick"

	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/core/graph"
	"cmfuzz/internal/core/relation"
)

func groupOf(groups []Group, name string) int {
	for i, g := range groups {
		for _, m := range g.Members {
			if m == name {
				return i
			}
		}
	}
	return -1
}

func allMembers(groups []Group) []string {
	var out []string
	for _, g := range groups {
		out = append(out, g.Members...)
	}
	sort.Strings(out)
	return out
}

func TestAllocateFoundsGroupsFromHeaviestEdges(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "b", 1.0)
	g.AddEdge("c", "d", 0.9)
	g.AddEdge("a", "c", 0.1)
	groups := Allocate(g, 2)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groupOf(groups, "a") != groupOf(groups, "b") {
		t.Error("heaviest edge (a,b) split across groups")
	}
	if groupOf(groups, "c") != groupOf(groups, "d") {
		t.Error("second edge (c,d) split across groups")
	}
	if groupOf(groups, "a") == groupOf(groups, "c") {
		t.Error("both founding edges landed in one group")
	}
}

func TestAllocateXorPullsUnassignedIn(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "b", 1.0)
	g.AddEdge("c", "d", 0.9)
	g.AddEdge("b", "e", 0.8) // e unassigned, b assigned: e joins b's group
	groups := Allocate(g, 2)
	if groupOf(groups, "e") != groupOf(groups, "b") {
		t.Fatal("xor case did not preserve the (b,e) connection")
	}
}

func TestAllocateFindBestAfterCapacity(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "b", 1.0)
	g.AddEdge("c", "d", 0.9)
	// (e,f) arrives after both groups exist; e is tied to a's group, f to c's.
	g.AddEdge("e", "f", 0.85)
	g.AddEdge("e", "a", 0.7)
	g.AddEdge("f", "c", 0.7)
	groups := Allocate(g, 2)
	if got := groupOf(groups, "e"); got != groupOf(groups, "a") {
		t.Errorf("e in group %d, want a's group %d", got, groupOf(groups, "a"))
	}
	if got := groupOf(groups, "f"); got != groupOf(groups, "c") {
		t.Errorf("f in group %d, want c's group %d", got, groupOf(groups, "c"))
	}
}

func TestAllocateIsolatedNodesSeedMissingGroups(t *testing.T) {
	g := graph.New()
	g.AddNode("a")
	g.AddNode("b")
	g.AddNode("c")
	groups := Allocate(g, 2)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if got := allMembers(groups); len(got) != 3 {
		t.Fatalf("members = %v", got)
	}
	// Balanced: sizes 2 and 1.
	sizes := []int{len(groups[0].Members), len(groups[1].Members)}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestAllocateSingleGroup(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "b", 1)
	g.AddEdge("c", "d", 0.5)
	groups := Allocate(g, 1)
	if len(groups) != 1 || len(groups[0].Members) != 4 {
		t.Fatalf("groups = %+v", groups)
	}
	// n < 1 clamps to 1.
	if got := Allocate(g, 0); len(got) != 1 {
		t.Fatalf("n=0 groups = %d", len(got))
	}
}

func TestScoreFormula(t *testing.T) {
	g := graph.New()
	g.AddEdge("c", "m1", 0.5)
	g.AddEdge("c", "m2", 0.3)
	got := Score(g, []string{"m1", "m2"}, "c")
	want := (0.5 + 0.3) * (0.5 + 0.3) / 2
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Score = %v, want %v", got, want)
	}
	if Score(g, nil, "c") != 0 {
		t.Fatal("empty group score != 0")
	}
	if Score(g, []string{"m3"}, "c") != 0 {
		t.Fatal("unconnected group score != 0")
	}
}

func TestScoreSquaringAmplifiesStrongConnections(t *testing.T) {
	g := graph.New()
	// One strong tie vs. two weak ties summing to slightly more, but the
	// larger group is penalized by |G|.
	g.AddEdge("c", "s", 0.8)
	g.AddEdge("c", "w1", 0.45)
	g.AddEdge("c", "w2", 0.45)
	strong := Score(g, []string{"s"}, "c")
	weak := Score(g, []string{"w1", "w2"}, "c")
	if strong <= weak {
		t.Fatalf("strong %v <= weak %v; squaring/size penalty not applied", strong, weak)
	}
}

func TestIntraInterWeights(t *testing.T) {
	g := graph.New()
	g.AddEdge("a", "b", 1.0)
	g.AddEdge("c", "d", 0.5)
	g.AddEdge("a", "c", 0.25)
	groups := []Group{{Members: []string{"a", "b"}}, {Members: []string{"c", "d"}}}
	if got := IntraWeight(g, groups); got != 1.5 {
		t.Fatalf("IntraWeight = %v, want 1.5", got)
	}
	if got := InterWeight(g, groups); got != 0.25 {
		t.Fatalf("InterWeight = %v, want 0.25", got)
	}
}

func TestAllocateBeatsRandomOnClusteredGraph(t *testing.T) {
	// Two natural clusters; Algorithm 2 should capture them and dominate
	// the random baseline on intra-group weight.
	g := graph.New()
	cluster := func(names []string, w float64) {
		for i := 0; i < len(names); i++ {
			for j := i + 1; j < len(names); j++ {
				g.AddEdge(names[i], names[j], w)
			}
		}
	}
	cluster([]string{"a1", "a2", "a3", "a4"}, 0.9)
	cluster([]string{"b1", "b2", "b3", "b4"}, 0.8)
	g.AddEdge("a1", "b1", 0.1)

	cohesive := Allocate(g, 2)
	intra := IntraWeight(g, cohesive)
	worse := 0
	for seed := int64(0); seed < 5; seed++ {
		if IntraWeight(g, RandomAllocate(g, 2, seed)) <= intra {
			worse++
		}
	}
	if worse < 4 {
		t.Fatalf("cohesive allocation (intra=%v) beaten by random too often (%d/5 worse)", intra, 5-worse)
	}
}

func TestGroupAssignment(t *testing.T) {
	model := configmodel.Build([]configspec.Item{
		{Name: "a", Default: "off", Values: []string{"on", "off"}},
		{Name: "b", Default: "slow", Values: []string{"fast", "slow"}},
		{Name: "c", Default: "1", Values: []string{"1", "2"}},
	})
	rel := &relation.Result{Graph: graph.New(), Best: map[string]relation.PairValues{}}
	rel.Graph.AddEdge("a", "b", 1.0)
	rel.Graph.AddEdge("b", "c", 0.5)
	rel.Best[relation.PairKey("a", "b")] = relation.PairValues{A: "a", B: "b", ValueA: "on", ValueB: "fast", Cover: 35}
	rel.Best[relation.PairKey("b", "c")] = relation.PairValues{A: "b", B: "c", ValueA: "slow", ValueB: "2", Cover: 13}

	cfg := GroupAssignment(model, rel, Group{Members: []string{"a", "b", "c"}})
	if cfg["a"] != "on" || cfg["b"] != "fast" {
		t.Fatalf("heaviest pair values not applied: %v", cfg)
	}
	// b already set by the heavier edge; only c takes the lighter pair's value.
	if cfg["c"] != "2" {
		t.Fatalf("c = %q, want 2", cfg["c"])
	}

	// A group without a's edges keeps defaults.
	cfgC := GroupAssignment(model, rel, Group{Members: []string{"c"}})
	if cfgC["a"] != "off" || cfgC["c"] != "1" {
		t.Fatalf("singleton group config = %v, want defaults", cfgC)
	}
}

func TestRandomAllocateDeterministicPerSeed(t *testing.T) {
	g := graph.New()
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		g.AddNode(n)
	}
	g1 := RandomAllocate(g, 2, 7)
	g2 := RandomAllocate(g, 2, 7)
	if len(g1) != len(g2) {
		t.Fatal("nondeterministic group count")
	}
	for i := range g1 {
		if len(g1[i].Members) != len(g2[i].Members) {
			t.Fatal("nondeterministic group sizes")
		}
		for j := range g1[i].Members {
			if g1[i].Members[j] != g2[i].Members[j] {
				t.Fatal("nondeterministic membership")
			}
		}
	}
}

func TestRoundRobinAllocate(t *testing.T) {
	g := graph.New()
	for _, n := range []string{"d", "c", "b", "a"} {
		g.AddNode(n)
	}
	groups := RoundRobinAllocate(g, 3)
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if got := allMembers(groups); len(got) != 4 {
		t.Fatalf("members = %v", got)
	}
	// Sorted dealing: a,d | b | c.
	if groupOf(groups, "a") != groupOf(groups, "d") {
		t.Error("round robin dealt unexpectedly")
	}
	if got := RoundRobinAllocate(graph.New(), 4); len(got) != 0 {
		t.Fatalf("empty graph groups = %d", len(got))
	}
}

// Property: Allocate always returns a partition of the node set into at
// most n non-empty groups, deterministically.
func TestQuickAllocatePartition(t *testing.T) {
	f := func(pairs []uint8, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		g := graph.New()
		for i := 0; i+1 < len(pairs); i += 2 {
			a := string(rune('a' + pairs[i]%20))
			b := string(rune('a' + pairs[i+1]%20))
			w := float64(pairs[i]%10+1) / 10
			if a != b {
				g.AddEdge(a, b, w)
			} else {
				g.AddNode(a)
			}
		}
		groups := Allocate(g, n)
		if len(groups) > n {
			return false
		}
		members := allMembers(groups)
		nodes := append([]string{}, g.Nodes()...)
		sort.Strings(nodes)
		if len(members) != len(nodes) {
			return false
		}
		for i := range members {
			if members[i] != nodes[i] {
				return false
			}
		}
		for _, grp := range groups {
			if len(grp.Members) == 0 {
				return false
			}
		}
		// Determinism.
		again := Allocate(g, n)
		if len(again) != len(groups) {
			return false
		}
		for i := range again {
			if len(again[i].Members) != len(groups[i].Members) {
				return false
			}
			for j := range again[i].Members {
				if again[i].Members[j] != groups[i].Members[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
