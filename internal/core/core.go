// Package core ties CMFuzz's two contributions together as one pipeline
// (paper Figure 1): Configuration Model Identification — extraction
// (Algorithm 1) and generalized model construction (Figure 2) — followed
// by Configuration Model Scheduling — pairwise relation quantification
// (Figure 3) and cohesive grouping/allocation (Algorithm 2). The output
// is one runtime-ready configuration per parallel fuzzing instance.
package core

import (
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/core/relation"
	"cmfuzz/internal/core/schedule"
)

// Pipeline is the identification → scheduling flow, parameterized by the
// startup-coverage probe of the subject under test.
type Pipeline struct {
	// Probe measures startup coverage of one configuration (0 = startup
	// failure, i.e. a conflicting configuration).
	Probe relation.Probe
	// Instances is the number of parallel fuzzing instances to schedule
	// for.
	Instances int
	// MaxValues caps per-entity values during probing (0 = all).
	MaxValues int
	// Weighting selects relation-weight derivation.
	Weighting relation.Weighting
	// Workers bounds the relation-probe worker pool (0 = GOMAXPROCS);
	// the plan is identical for any worker count.
	Workers int
}

// Plan is the pipeline's output: the models built along the way and the
// per-instance configuration groups and assignments.
type Plan struct {
	// Items is the consolidated configuration item set (Algorithm 1).
	Items []configspec.Item
	// Model is the generalized configuration model (Figure 2).
	Model *configmodel.Model
	// Relation is the relation-aware configuration model (Figure 3).
	Relation *relation.Result
	// Groups are the cohesive entity groups (Algorithm 2), one per
	// instance.
	Groups []schedule.Group
	// Assignments are the runtime-ready configurations, parallel to
	// Groups.
	Assignments []configmodel.Assignment
}

// Run executes the pipeline over the given configuration sources.
func (p *Pipeline) Run(input configspec.Input) *Plan {
	n := p.Instances
	if n < 1 {
		n = 4
	}
	plan := &Plan{}
	plan.Items = configspec.Extract(input)
	plan.Model = configmodel.Build(plan.Items)
	plan.Relation = relation.Quantify(plan.Model, p.Probe, relation.Options{
		MaxValues: p.MaxValues,
		Weighting: p.Weighting,
		Workers:   p.Workers,
	})
	plan.Groups = schedule.Allocate(plan.Relation.Graph, n)
	for _, g := range plan.Groups {
		plan.Assignments = append(plan.Assignments, schedule.GroupAssignment(plan.Model, plan.Relation, g))
	}
	return plan
}
