package core

import (
	"testing"

	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/configspec"
	"cmfuzz/internal/protocols"
	"cmfuzz/internal/subject"
)

func TestPipelineOnSyntheticSubject(t *testing.T) {
	input := configspec.Input{
		CLIHelp: []string{`Usage: srv
  --mode MODE   operating mode, one of: plain, secure
  --key KEY     secret key, one of: k1, k2
  --cache N     cache entries (default: 64)
`},
	}
	// secure mode requires a key; secure+key unlocks a region.
	probe := func(cfg configmodel.Assignment) int {
		if cfg["mode"] == "secure" && cfg["key"] == "" {
			return 0
		}
		cov := 10
		if cfg["mode"] == "secure" {
			cov += 8
		}
		if cfg["cache"] != "0" {
			cov++
		}
		return cov
	}
	p := &Pipeline{Probe: probe, Instances: 2}
	plan := p.Run(input)

	if len(plan.Items) != 3 {
		t.Fatalf("items = %d", len(plan.Items))
	}
	if plan.Model.Len() != 3 {
		t.Fatalf("model entities = %d", plan.Model.Len())
	}
	if _, ok := plan.Relation.Graph.Weight("key", "mode"); !ok {
		t.Fatal("dependency edge (mode,key) missing")
	}
	if len(plan.Groups) == 0 || len(plan.Assignments) != len(plan.Groups) {
		t.Fatalf("groups/assignments mismatch: %d/%d", len(plan.Groups), len(plan.Assignments))
	}
	// The group containing mode+key must schedule the secure combination.
	secure := false
	for _, a := range plan.Assignments {
		if a["mode"] == "secure" && a["key"] != "" {
			secure = true
		}
	}
	if !secure {
		t.Fatalf("no assignment schedules the secure dependency: %v", plan.Assignments)
	}
}

func TestPipelineOnRealSubjects(t *testing.T) {
	for _, sub := range protocols.All() {
		sub := sub
		p := &Pipeline{
			Probe: func(cfg configmodel.Assignment) int {
				return subject.Probe(sub, map[string]string(cfg))
			},
			Instances: 4,
			MaxValues: 4,
		}
		plan := p.Run(sub.ConfigInput())
		if plan.Model.Len() < 10 {
			t.Errorf("%s: only %d entities extracted", sub.Info().Protocol, plan.Model.Len())
		}
		if len(plan.Groups) == 0 || len(plan.Groups) > 4 {
			t.Errorf("%s: %d groups", sub.Info().Protocol, len(plan.Groups))
		}
		// Every assignment must boot.
		for i, a := range plan.Assignments {
			if subject.Probe(sub, map[string]string(a)) == 0 {
				// Jointly-conflicting assignments are possible and are
				// repaired by the campaign runner; they must at least be
				// rare. Flag them for visibility.
				t.Logf("%s: assignment %d does not boot unrepaired: %v", sub.Info().Protocol, i, a)
			}
		}
	}
}
