// Package configmodel implements the Generalized Model Construction half
// of CMFuzz's configuration model identification (paper §III-A2, Figure 2).
// Extracted configuration items become 4-tuple entities — (Name, Type,
// Flag, Values) — where Type is inferred from value patterns, Flag marks
// whether the value may be mutated during fuzzing, and Values is the set
// of typical values driving both pairwise relation probing and adaptive
// configuration mutation.
//
// The package also reassembles entity groups into runtime-ready forms
// (CLI argument vectors, key-value config files), which is what each
// parallel fuzzing instance consumes at startup (paper §III-B2).
package configmodel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cmfuzz/internal/core/configspec"
)

// Type is the inferred value type of a configuration entity.
type Type int

// The entity types of Figure 2.
const (
	TypeBoolean Type = iota
	TypeNumber
	TypeString
)

var typeNames = [...]string{TypeBoolean: "Boolean", TypeNumber: "Number", TypeString: "String"}

// String names the type as the paper does.
func (t Type) String() string {
	if t < 0 || int(t) >= len(typeNames) {
		return "Unknown"
	}
	return typeNames[t]
}

// Flag marks whether an entity's value is expected to change during
// typical protocol operation, and therefore whether the fuzzer may
// mutate it.
type Flag int

// The mutability flags of Figure 2.
const (
	Mutable Flag = iota
	Immutable
)

// String names the flag as the paper does.
func (f Flag) String() string {
	if f == Immutable {
		return "IMMUTABLE"
	}
	return "MUTABLE"
}

// An Entity is one 4-tuple of the generalized configuration model,
// carrying the attributes of Figure 2 plus provenance.
type Entity struct {
	Name    string
	Type    Type
	Flag    Flag
	Values  []string
	Default string
	Source  configspec.Source
	Doc     string
}

// boolWords are the value spellings treated as boolean-like.
var boolWords = map[string]bool{
	"true": true, "false": true, "yes": true, "no": true,
	"on": true, "off": true, "enabled": true, "disabled": true,
}

// FromItem converts one extracted configuration item into a model entity,
// applying the paper's inference rules: numeric values → Number,
// boolean-like values → Boolean, paths/URLs and other text → String;
// static values (paths, system directories) → IMMUTABLE, adjustable
// values (numeric ranges, mode settings) → MUTABLE.
func FromItem(it configspec.Item) Entity {
	e := Entity{
		Name:    it.Name,
		Default: it.Default,
		Source:  it.Source,
		Doc:     it.Doc,
	}
	e.Type = inferType(it)
	e.Flag = inferFlag(e.Type, it)
	e.Values = typicalValues(e, it)
	return e
}

// NewModel constructs a model directly from pre-built entities, bypassing
// inference. Duplicate names keep the first occurrence.
func NewModel(entities []Entity) *Model {
	m := &Model{index: make(map[string]int, len(entities))}
	for _, e := range entities {
		if _, dup := m.index[e.Name]; dup {
			continue
		}
		m.index[e.Name] = len(m.entities)
		m.entities = append(m.entities, e)
	}
	return m
}

// Build constructs the generalized configuration model from a consolidated
// item set.
func Build(items []configspec.Item) *Model {
	m := &Model{index: make(map[string]int, len(items))}
	for _, it := range items {
		if _, dup := m.index[it.Name]; dup {
			continue
		}
		m.index[it.Name] = len(m.entities)
		m.entities = append(m.entities, FromItem(it))
	}
	return m
}

// inferType classifies the item from its value patterns.
func inferType(it configspec.Item) Type {
	samples := gatherSamples(it)
	if len(samples) == 0 {
		return TypeString
	}
	allBool, allNum := true, true
	for _, s := range samples {
		ls := strings.ToLower(s)
		if !boolWords[ls] {
			allBool = false
		}
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			allNum = false
		}
	}
	switch {
	case allBool:
		return TypeBoolean
	case allNum:
		return TypeNumber
	default:
		return TypeString
	}
}

func gatherSamples(it configspec.Item) []string {
	var samples []string
	if it.Default != "" {
		samples = append(samples, it.Default)
	}
	samples = append(samples, it.Values...)
	return samples
}

// inferFlag marks path-like and address-like string values IMMUTABLE;
// everything adjustable (numbers, booleans, enumerations) is MUTABLE.
func inferFlag(t Type, it configspec.Item) Flag {
	if t != TypeString {
		return Mutable
	}
	// An enumeration of modes is adjustable even though it's a string.
	if len(it.Values) > 1 {
		return Mutable
	}
	if looksStatic(it.Default) || nameSuggestsStatic(it.Name) {
		return Immutable
	}
	return Mutable
}

func looksStatic(v string) bool {
	if v == "" {
		return false
	}
	if strings.Contains(v, "://") || strings.HasPrefix(v, "/") || strings.HasPrefix(v, "./") {
		return true
	}
	// Dotted quads and host:port endpoints are deployment-static.
	if strings.Count(v, ".") == 3 && strings.IndexFunc(v, func(r rune) bool {
		return (r < '0' || r > '9') && r != '.'
	}) < 0 {
		return true
	}
	return false
}

func nameSuggestsStatic(name string) bool {
	for _, kw := range []string{"file", "dir", "path", "cert", "socket", "pid"} {
		if strings.Contains(name, kw) {
			return true
		}
	}
	return false
}

// typicalValues derives the Values attribute: booleans get both truth
// values, numbers get the default plus boundary neighbors, enumerations
// keep their candidates, and immutable strings keep only their default.
func typicalValues(e Entity, it configspec.Item) []string {
	switch {
	case e.Flag == Immutable:
		// An immutable value is never fuzzed, but it still has one
		// typical value (its default, or the single candidate the source
		// documented) so dependency pairs like durable/store-dir can be
		// probed with the partner present.
		if e.Default != "" {
			return []string{e.Default}
		}
		if len(it.Values) > 0 {
			return []string{it.Values[0]}
		}
		return nil
	case e.Type == TypeBoolean:
		return []string{"true", "false"}
	case e.Type == TypeNumber:
		return numberValues(e.Default, it.Values)
	default:
		vals := dedup(append(append([]string{}, it.Values...), e.Default))
		if len(vals) == 0 {
			return nil
		}
		return vals
	}
}

// numberValues builds the typical-value set for a numeric entity:
// its default, the candidates the sources revealed, and the standard
// boundary probes 0, 1, and 2×default.
func numberValues(def string, candidates []string) []string {
	vals := []string{}
	if def != "" {
		vals = append(vals, def)
	}
	vals = append(vals, candidates...)
	if n, err := strconv.ParseFloat(def, 64); err == nil && n != 0 {
		vals = append(vals, formatNum(n*2))
	}
	vals = append(vals, "0", "1")
	return dedup(vals)
}

func formatNum(n float64) string {
	if n == float64(int64(n)) {
		return strconv.FormatInt(int64(n), 10)
	}
	return strconv.FormatFloat(n, 'g', -1, 64)
}

func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// A Model is the generalized configuration model: the ordered entity set
// extracted from one protocol.
type Model struct {
	entities []Entity
	index    map[string]int
}

// Len returns the number of entities.
func (m *Model) Len() int { return len(m.entities) }

// Entities returns the entities in extraction order. The slice aliases
// internal storage and must not be modified.
func (m *Model) Entities() []Entity { return m.entities }

// Get returns the entity with the given name.
func (m *Model) Get(name string) (Entity, bool) {
	i, ok := m.index[name]
	if !ok {
		return Entity{}, false
	}
	return m.entities[i], true
}

// Names returns all entity names in extraction order.
func (m *Model) Names() []string {
	out := make([]string, len(m.entities))
	for i, e := range m.entities {
		out[i] = e.Name
	}
	return out
}

// Mutable returns the entities whose Flag permits runtime mutation.
func (m *Model) Mutable() []Entity {
	var out []Entity
	for _, e := range m.entities {
		if e.Flag == Mutable {
			out = append(out, e)
		}
	}
	return out
}

// An Assignment binds entity names to concrete values — one runnable
// configuration.
type Assignment map[string]string

// Clone returns an independent copy of the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// String renders the assignment canonically (sorted "k=v" pairs), for
// logs and crash reports.
func (a Assignment) String() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, a[k])
	}
	return b.String()
}

// Defaults returns the assignment that binds every entity with a default
// to that default. Entities without defaults (commented-out options,
// disabled features) stay unset, so the default assignment reflects the
// shipped configuration.
func (m *Model) Defaults() Assignment {
	a := make(Assignment, len(m.entities))
	for _, e := range m.entities {
		if e.Default != "" {
			a[e.Name] = e.Default
		}
	}
	return a
}

// RenderCLI reassembles an assignment into a CLI argument vector
// (`--name=value`, boolean true as a bare `--name` flag, boolean false
// omitted), in sorted order for determinism.
func RenderCLI(a Assignment) []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		switch a[k] {
		case "true":
			out = append(out, "--"+k)
		case "false":
			// absent flag
		default:
			out = append(out, "--"+k+"="+a[k])
		}
	}
	return out
}

// RenderKeyValue reassembles an assignment into key-value config file
// text, in sorted order for determinism.
func RenderKeyValue(a Assignment) string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, a[k])
	}
	return b.String()
}
