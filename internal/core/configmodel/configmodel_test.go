package configmodel

import (
	"strings"
	"testing"
	"testing/quick"

	"cmfuzz/internal/core/configspec"
)

func item(name, def string, values ...string) configspec.Item {
	return configspec.Item{Name: name, Default: def, Values: values}
}

func TestInferTypeBoolean(t *testing.T) {
	for _, def := range []string{"true", "false", "yes", "no", "on", "off"} {
		e := FromItem(item("opt", def))
		if e.Type != TypeBoolean {
			t.Errorf("default %q inferred %v, want Boolean", def, e.Type)
		}
	}
	e := FromItem(item("opt", "true", "false"))
	if e.Type != TypeBoolean {
		t.Errorf("bool candidates inferred %v", e.Type)
	}
}

func TestInferTypeNumber(t *testing.T) {
	for _, def := range []string{"0", "1883", "-5", "0.5", "65535"} {
		e := FromItem(item("port", def))
		if e.Type != TypeNumber {
			t.Errorf("default %q inferred %v, want Number", def, e.Type)
		}
	}
	// Mixed numeric/non-numeric candidates are strings.
	e := FromItem(item("mode", "1", "fast"))
	if e.Type != TypeString {
		t.Errorf("mixed candidates inferred %v, want String", e.Type)
	}
}

func TestInferTypeString(t *testing.T) {
	for _, def := range []string{"/var/log/x.log", "http://a/b", "keep_last", ""} {
		e := FromItem(item("opt", def))
		if e.Type != TypeString {
			t.Errorf("default %q inferred %v, want String", def, e.Type)
		}
	}
}

func TestInferFlag(t *testing.T) {
	cases := []struct {
		it   configspec.Item
		want Flag
	}{
		{item("port", "1883"), Mutable},
		{item("enabled", "true"), Mutable},
		{item("mode", "plain", "plain", "tls", "psk"), Mutable},
		{item("opt", "/etc/mosquitto/ca.crt"), Immutable},
		{item("opt", "./relative/path"), Immutable},
		{item("endpoint", "coap://host/res"), Immutable},
		{item("upstream", "8.8.8.8"), Immutable},
		{item("log-destination", "stdout"), Mutable}, // no static hints
		{item("acl-file", "acl"), Immutable},         // name keyword
		{item("pid-holder", "x"), Immutable},
	}
	for _, c := range cases {
		if got := FromItem(c.it).Flag; got != c.want {
			t.Errorf("%s (default %q): flag = %v, want %v", c.it.Name, c.it.Default, got, c.want)
		}
	}
}

func TestTypicalValues(t *testing.T) {
	b := FromItem(item("persistence", "false"))
	if len(b.Values) != 2 {
		t.Errorf("boolean values = %v", b.Values)
	}

	n := FromItem(item("keepalive", "60"))
	want := map[string]bool{"60": true, "120": true, "0": true, "1": true}
	if len(n.Values) != len(want) {
		t.Fatalf("number values = %v", n.Values)
	}
	for _, v := range n.Values {
		if !want[v] {
			t.Errorf("unexpected number value %q", v)
		}
	}

	e := FromItem(item("auth", "none", "none", "password", "certificate"))
	if len(e.Values) != 3 {
		t.Errorf("enum values = %v", e.Values)
	}

	imm := FromItem(item("cert-file", "/a/b.crt"))
	if len(imm.Values) != 1 || imm.Values[0] != "/a/b.crt" {
		t.Errorf("immutable values = %v", imm.Values)
	}
}

func TestTypeFlagStrings(t *testing.T) {
	if TypeBoolean.String() != "Boolean" || TypeNumber.String() != "Number" ||
		TypeString.String() != "String" || Type(9).String() != "Unknown" {
		t.Error("Type.String wrong")
	}
	if Mutable.String() != "MUTABLE" || Immutable.String() != "IMMUTABLE" {
		t.Error("Flag.String wrong")
	}
}

func TestBuildModel(t *testing.T) {
	m := Build([]configspec.Item{
		item("port", "1883"),
		item("persistence", "false"),
		item("cert-file", "/a.crt"),
		item("port", "9999"), // duplicate ignored
	})
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	if e, ok := m.Get("port"); !ok || e.Default != "1883" {
		t.Fatalf("Get(port) = %+v, %v", e, ok)
	}
	if _, ok := m.Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
	if got := m.Names(); got[0] != "port" || got[1] != "persistence" {
		t.Fatalf("Names = %v", got)
	}
	mut := m.Mutable()
	if len(mut) != 2 {
		t.Fatalf("Mutable = %d entities, want 2", len(mut))
	}
}

func TestDefaults(t *testing.T) {
	m := Build([]configspec.Item{
		item("port", "1883"),
		item("auth", "", "none", "password"),
		{Name: "bare"},
	})
	d := m.Defaults()
	if d["port"] != "1883" {
		t.Errorf("port default = %q", d["port"])
	}
	if _, ok := d["auth"]; ok {
		t.Error("defaultless entity must stay unset (disabled feature)")
	}
	if _, ok := d["bare"]; ok {
		t.Error("valueless entity should be absent from defaults")
	}
}

func TestAssignmentCloneAndString(t *testing.T) {
	a := Assignment{"b": "2", "a": "1"}
	c := a.Clone()
	c["a"] = "9"
	if a["a"] != "1" {
		t.Fatal("Clone aliases original")
	}
	if got := a.String(); got != "a=1 b=2" {
		t.Fatalf("String = %q", got)
	}
}

func TestRenderCLI(t *testing.T) {
	args := RenderCLI(Assignment{"port": "5683", "verbose": "true", "quiet": "false"})
	joined := strings.Join(args, " ")
	if joined != "--port=5683 --verbose" {
		t.Fatalf("RenderCLI = %q", joined)
	}
}

func TestRenderKeyValue(t *testing.T) {
	text := RenderKeyValue(Assignment{"b": "2", "a": "1"})
	if text != "a=1\nb=2\n" {
		t.Fatalf("RenderKeyValue = %q", text)
	}
}

// Property: rendering then re-extracting a key-value assignment recovers
// every binding — the reassembly round trip instances rely on.
func TestQuickRenderExtractRoundTrip(t *testing.T) {
	f := func(keys []string, vals []string) bool {
		a := Assignment{}
		for i, k := range keys {
			k = configspec.NormalizeName(k)
			if k == "" || strings.ContainsAny(k, "=\n# ;[]") || !isSimpleIdent(k) {
				continue
			}
			v := "v"
			if i < len(vals) {
				v = sanitizeVal(vals[i])
			}
			a[k] = v
		}
		items := configspec.ExtractKeyValue(RenderKeyValue(a))
		got := map[string]string{}
		for _, it := range items {
			got[it.Name] = it.Default
		}
		for k, v := range a {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func isSimpleIdent(s string) bool {
	for _, r := range s {
		ok := r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '.'
		if !ok {
			return false
		}
	}
	return s != ""
}

func sanitizeVal(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > ' ' && r != '=' && r != '#' && r != ';' && r < 127 {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "v"
	}
	return b.String()
}

// Property: FromItem always produces a usable entity — typed, and with a
// non-empty Values set whenever the item had any value information.
func TestQuickFromItemTotal(t *testing.T) {
	f := func(name, def string, values []string) bool {
		e := FromItem(configspec.Item{Name: name, Default: def, Values: values})
		if e.Name != name || e.Default != def {
			return false
		}
		if def != "" && len(e.Values) == 0 {
			return false
		}
		for _, v := range e.Values {
			if v == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
