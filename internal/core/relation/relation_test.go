package relation

import (
	"reflect"
	"testing"

	"cmfuzz/internal/core/configmodel"
)

// testModel builds a small model with a strong synergy (a=bridge, b=fast),
// an independent contributor (c), and a conflicting pair (x=clash,
// y=clash fails startup). Entities are hand-built so typical values are
// exact.
func testModel() *configmodel.Model {
	return configmodel.NewModel([]configmodel.Entity{
		{Name: "a", Default: "plain", Values: []string{"bridge", "plain"}},
		{Name: "b", Default: "slow", Values: []string{"fast", "slow"}},
		{Name: "c", Default: "1", Values: []string{"1", "2"}},
		{Name: "x", Default: "idle", Values: []string{"clash"}},
		{Name: "y", Default: "idle", Values: []string{"clash"}},
	})
}

func testProbe(cfg configmodel.Assignment) int {
	if cfg["x"] == "clash" && cfg["y"] == "clash" {
		return 0 // conflicting pair: startup failure
	}
	cov := 10
	if cfg["a"] == "bridge" {
		cov += 5
		if cfg["b"] == "fast" {
			cov += 20 // synergy: only together
		}
	}
	if cfg["c"] == "2" {
		cov += 3 // independent contribution
	}
	return cov
}

func TestQuantifyInteractionEdges(t *testing.T) {
	res := Quantify(testModel(), testProbe, Options{})

	// The synergistic pair has the max weight, normalized to 1.
	w, ok := res.Graph.Weight("a", "b")
	if !ok || w != 1.0 {
		t.Fatalf("weight(a,b) = %v,%v, want 1.0", w, ok)
	}

	// Conflicting pair gets no edge.
	if _, ok := res.Graph.Weight("x", "y"); ok {
		t.Fatal("conflicting pair (x,y) got an edge")
	}

	// Independent pairs get no edge either: no interaction.
	for _, pair := range [][2]string{{"a", "c"}, {"b", "c"}, {"c", "y"}} {
		if _, ok := res.Graph.Weight(pair[0], pair[1]); ok {
			t.Errorf("independent pair %v got an interaction edge", pair)
		}
	}

	if res.Baseline != 10 {
		t.Fatalf("baseline = %d, want 10", res.Baseline)
	}
}

func TestQuantifyBestComboAndGain(t *testing.T) {
	res := Quantify(testModel(), testProbe, Options{})
	best, ok := res.Best[PairKey("a", "b")]
	if !ok {
		t.Fatal("no best combo for (a,b)")
	}
	if best.ValueA != "bridge" || best.ValueB != "fast" {
		t.Fatalf("best combo = %q/%q, want bridge/fast", best.ValueA, best.ValueB)
	}
	if best.Cover != 35 {
		t.Fatalf("best cover = %d, want 35", best.Cover)
	}
	// Interaction gain: 35 − cov(a=bridge)=15 − cov(b=fast)=10 + 10 = 20.
	if best.Gain != 20 {
		t.Fatalf("best gain = %d, want 20", best.Gain)
	}
}

func TestQuantifyBestSingle(t *testing.T) {
	res := Quantify(testModel(), testProbe, Options{})
	if sv, ok := res.BestSingle["a"]; !ok || sv.Value != "bridge" || sv.Gain != 5 {
		t.Fatalf("BestSingle[a] = %+v, want bridge/+5", sv)
	}
	if sv, ok := res.BestSingle["c"]; !ok || sv.Value != "2" || sv.Gain != 3 {
		t.Fatalf("BestSingle[c] = %+v, want 2/+3", sv)
	}
	// x alone does not fail; best is either value with gain 0.
	if sv, ok := res.BestSingle["x"]; !ok || sv.Gain != 0 {
		t.Fatalf("BestSingle[x] = %+v, want gain 0", sv)
	}
}

func TestQuantifyRawCoverageWeighting(t *testing.T) {
	res := Quantify(testModel(), testProbe, Options{Weighting: WeightRawCoverage})
	// Under raw coverage, independent pairs DO get edges.
	if _, ok := res.Graph.Weight("a", "c"); !ok {
		t.Fatal("raw weighting should connect (a,c)")
	}
	// Conflict still pruned.
	if _, ok := res.Graph.Weight("x", "y"); ok {
		t.Fatal("conflicting pair got an edge under raw weighting")
	}
	// Heaviest pair is still (a,b) (raw 35).
	if w, _ := res.Graph.Weight("a", "b"); w != 1.0 {
		t.Fatalf("weight(a,b) = %v, want 1.0", w)
	}
}

func TestQuantifyProbeCount(t *testing.T) {
	res := Quantify(testModel(), testProbe, Options{})
	// The matrix requests 1 baseline + singles (2+2+2+1+1 = 8) + pair
	// combos (ab=4, ac=4, ax=2, ay=2, bc=4, bx=2, by=2, cx=2, cy=2,
	// xy=1 = 25) = 34 probes.
	if res.ProbeRequests != 34 {
		t.Fatalf("probe requests = %d, want 34", res.ProbeRequests)
	}
	// Memoization collapses duplicates (default-valued singles equal the
	// baseline; pair combos holding one default equal a single) onto 16
	// distinct startups: baseline, 5 non-default singles, and one novel
	// combination per pair.
	if res.Probes != 16 {
		t.Fatalf("startups = %d, want 16", res.Probes)
	}
}

func TestQuantifyProbeCountsActualStartups(t *testing.T) {
	calls := 0
	probe := func(cfg configmodel.Assignment) int {
		calls++
		return testProbe(cfg)
	}
	res := Quantify(testModel(), probe, Options{Workers: 1})
	if calls != res.Probes {
		t.Fatalf("Probes = %d but the oracle ran %d times", res.Probes, calls)
	}
}

func TestQuantifyMaxValuesCap(t *testing.T) {
	m := configmodel.NewModel([]configmodel.Entity{
		{Name: "n", Default: "5", Values: []string{"5", "6", "7", "8"}},
		{Name: "m", Default: "1", Values: []string{"1", "2", "3", "4"}},
	})
	probe := func(cfg configmodel.Assignment) int { return 1 }
	res := Quantify(m, probe, Options{MaxValues: 2})
	// 1 baseline + 2+2 singles + 4 pair combos = 9 requests; the
	// default-valued singles and combos collapse onto earlier probes,
	// leaving 4 startups (baseline, n=6, m=2, n=6∧m=2).
	if res.ProbeRequests != 9 {
		t.Fatalf("capped probe requests = %d, want 9", res.ProbeRequests)
	}
	if res.Probes != 4 {
		t.Fatalf("capped startups = %d, want 4", res.Probes)
	}
	// Each entity kept 2 of 4 values.
	if res.DroppedValues != 4 {
		t.Fatalf("dropped values = %d, want 4", res.DroppedValues)
	}
}

func TestCandidateValuesCapKeepsDefaultAndBoundaries(t *testing.T) {
	e := configmodel.Entity{
		Name:    "limit",
		Default: "64",
		Values:  []string{"16", "32", "64", "128", "0", "1"},
	}
	vals, dropped := candidateValues(e, Options{MaxValues: 4})
	if len(vals) != 4 || dropped != 2 {
		t.Fatalf("capped values = %v (dropped %d), want 4 kept / 2 dropped", vals, dropped)
	}
	has := map[string]bool{}
	for _, v := range vals {
		has[v] = true
	}
	// The naive vals[:4] cap would keep 16/32/64/128 and drop the
	// boundary probes 0 and 1; the cap must prefer the default and the
	// boundaries over mid-range candidates.
	for _, want := range []string{"64", "0", "1"} {
		if !has[want] {
			t.Fatalf("cap dropped %q: kept %v", want, vals)
		}
	}
	// Kept values preserve the original relative order.
	if vals[len(vals)-2] != "0" || vals[len(vals)-1] != "1" {
		t.Fatalf("cap reordered values: %v", vals)
	}
}

func TestCandidateValuesDedupes(t *testing.T) {
	e := configmodel.Entity{Name: "mode", Default: "a", Values: []string{"a", "b", "a", "b", "c"}}
	vals, dropped := candidateValues(e, Options{})
	if len(vals) != 3 || dropped != 0 {
		t.Fatalf("deduped values = %v (dropped %d), want [a b c] / 0", vals, dropped)
	}
}

func TestQuantifyDependencyPair(t *testing.T) {
	// f=on alone fails startup (missing dependency d); together they
	// succeed with a feature region — the bridge/bridge-address shape.
	m := configmodel.NewModel([]configmodel.Entity{
		{Name: "f", Default: "off", Values: []string{"on", "off"}},
		{Name: "d", Default: "", Values: []string{"10.0.0.2"}},
		{Name: "z", Default: "0", Values: []string{"0", "1"}},
	})
	probe := func(cfg configmodel.Assignment) int {
		if cfg["f"] == "on" && cfg["d"] == "" {
			return 0 // f requires d
		}
		cov := 20
		if cfg["f"] == "on" {
			cov += 15
		}
		return cov
	}
	res := Quantify(m, probe, Options{})
	w, ok := res.Graph.Weight("f", "d")
	if !ok || w != 1.0 {
		t.Fatalf("dependency edge (f,d) = %v,%v, want strongest edge", w, ok)
	}
	best := res.Best[PairKey("d", "f")]
	if best.ValueA != "on" || best.ValueB != "10.0.0.2" {
		// PairValues keeps model order (f before d).
		t.Fatalf("dependency best combo = %+v", best)
	}
	if _, ok := res.Graph.Weight("f", "z"); ok {
		t.Fatal("non-interacting pair (f,z) got an edge")
	}
}

func TestPairKeyCanonical(t *testing.T) {
	if PairKey("b", "a") != PairKey("a", "b") {
		t.Fatal("PairKey not canonical")
	}
	if PairKey("a", "b") == PairKey("a", "c") {
		t.Fatal("PairKey collides")
	}
}

func TestQuantifyAllConflicting(t *testing.T) {
	m := configmodel.NewModel([]configmodel.Entity{
		{Name: "p", Default: "1", Values: []string{"1"}},
		{Name: "q", Default: "1", Values: []string{"1"}},
	})
	res := Quantify(m, func(configmodel.Assignment) int { return 0 }, Options{})
	if res.Graph.EdgeCount() != 0 {
		t.Fatal("all-zero probe produced edges")
	}
	if len(res.Best) != 0 {
		t.Fatal("all-zero probe recorded best combos")
	}
	// Nodes still exist so the scheduler can distribute them.
	if res.Graph.NodeCount() != 2 {
		t.Fatalf("node count = %d", res.Graph.NodeCount())
	}
}

func TestQuantifyDeterministic(t *testing.T) {
	m := testModel()
	r1 := Quantify(m, testProbe, Options{})
	r2 := Quantify(m, testProbe, Options{})
	e1, e2 := r1.Graph.Edges(), r2.Graph.Edges()
	if len(e1) != len(e2) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

// wideModel is a larger synthetic model whose probe function has
// synergies, conflicts, and independent contributors across many pairs —
// enough surface that a scheduling-dependent merge would show up.
func wideModel() (*configmodel.Model, Probe) {
	var ents []configmodel.Entity
	for i := 0; i < 8; i++ {
		name := string(rune('a' + i))
		ents = append(ents, configmodel.Entity{
			Name:    name,
			Default: "d0",
			Values:  []string{"d0", "v1", "v2", "v3"},
		})
	}
	m := configmodel.NewModel(ents)
	probe := func(cfg configmodel.Assignment) int {
		if cfg["a"] == "v1" && cfg["b"] == "v1" {
			return 0 // conflicting pair
		}
		cov := 100
		for k, v := range cfg {
			if v == "d0" {
				continue
			}
			cov += int(k[0]-'a')*3 + len(v)
		}
		if cfg["c"] == "v2" && cfg["d"] == "v3" {
			cov += 40 // synergy
		}
		if cfg["e"] == "v1" && cfg["f"] == "v1" {
			cov += 25 // weaker synergy
		}
		return cov
	}
	return m, probe
}

// TestQuantifyIdenticalAcrossWorkerCounts is the determinism guarantee of
// the parallel probe executor: graph edges, Best, BestSingle, Baseline
// and the probe counters must be identical for worker counts 1, 2 and 8.
func TestQuantifyIdenticalAcrossWorkerCounts(t *testing.T) {
	m, probe := wideModel()
	for _, weighting := range []Weighting{WeightInteraction, WeightRawCoverage} {
		base := Quantify(m, probe, Options{Weighting: weighting, Workers: 1})
		for _, workers := range []int{2, 8} {
			got := Quantify(m, probe, Options{Weighting: weighting, Workers: workers})
			if !reflect.DeepEqual(got.Graph.Edges(), base.Graph.Edges()) {
				t.Fatalf("weighting %d workers %d: edges diverge\n%+v\nvs\n%+v",
					weighting, workers, got.Graph.Edges(), base.Graph.Edges())
			}
			if !reflect.DeepEqual(got.Best, base.Best) {
				t.Fatalf("weighting %d workers %d: Best diverges", weighting, workers)
			}
			if !reflect.DeepEqual(got.BestSingle, base.BestSingle) {
				t.Fatalf("weighting %d workers %d: BestSingle diverges", weighting, workers)
			}
			if got.Baseline != base.Baseline || got.Probes != base.Probes ||
				got.ProbeRequests != base.ProbeRequests || got.DroppedValues != base.DroppedValues {
				t.Fatalf("weighting %d workers %d: counters diverge: %+v vs %+v",
					weighting, workers, got, base)
			}
		}
	}
}
