package relation

import (
	"testing"

	"cmfuzz/internal/core/configmodel"
)

// testModel builds a small model with a strong synergy (a=bridge, b=fast),
// an independent contributor (c), and a conflicting pair (x=clash,
// y=clash fails startup). Entities are hand-built so typical values are
// exact.
func testModel() *configmodel.Model {
	return configmodel.NewModel([]configmodel.Entity{
		{Name: "a", Default: "plain", Values: []string{"bridge", "plain"}},
		{Name: "b", Default: "slow", Values: []string{"fast", "slow"}},
		{Name: "c", Default: "1", Values: []string{"1", "2"}},
		{Name: "x", Default: "idle", Values: []string{"clash"}},
		{Name: "y", Default: "idle", Values: []string{"clash"}},
	})
}

func testProbe(cfg configmodel.Assignment) int {
	if cfg["x"] == "clash" && cfg["y"] == "clash" {
		return 0 // conflicting pair: startup failure
	}
	cov := 10
	if cfg["a"] == "bridge" {
		cov += 5
		if cfg["b"] == "fast" {
			cov += 20 // synergy: only together
		}
	}
	if cfg["c"] == "2" {
		cov += 3 // independent contribution
	}
	return cov
}

func TestQuantifyInteractionEdges(t *testing.T) {
	res := Quantify(testModel(), testProbe, Options{})

	// The synergistic pair has the max weight, normalized to 1.
	w, ok := res.Graph.Weight("a", "b")
	if !ok || w != 1.0 {
		t.Fatalf("weight(a,b) = %v,%v, want 1.0", w, ok)
	}

	// Conflicting pair gets no edge.
	if _, ok := res.Graph.Weight("x", "y"); ok {
		t.Fatal("conflicting pair (x,y) got an edge")
	}

	// Independent pairs get no edge either: no interaction.
	for _, pair := range [][2]string{{"a", "c"}, {"b", "c"}, {"c", "y"}} {
		if _, ok := res.Graph.Weight(pair[0], pair[1]); ok {
			t.Errorf("independent pair %v got an interaction edge", pair)
		}
	}

	if res.Baseline != 10 {
		t.Fatalf("baseline = %d, want 10", res.Baseline)
	}
}

func TestQuantifyBestComboAndGain(t *testing.T) {
	res := Quantify(testModel(), testProbe, Options{})
	best, ok := res.Best[PairKey("a", "b")]
	if !ok {
		t.Fatal("no best combo for (a,b)")
	}
	if best.ValueA != "bridge" || best.ValueB != "fast" {
		t.Fatalf("best combo = %q/%q, want bridge/fast", best.ValueA, best.ValueB)
	}
	if best.Cover != 35 {
		t.Fatalf("best cover = %d, want 35", best.Cover)
	}
	// Interaction gain: 35 − cov(a=bridge)=15 − cov(b=fast)=10 + 10 = 20.
	if best.Gain != 20 {
		t.Fatalf("best gain = %d, want 20", best.Gain)
	}
}

func TestQuantifyBestSingle(t *testing.T) {
	res := Quantify(testModel(), testProbe, Options{})
	if sv, ok := res.BestSingle["a"]; !ok || sv.Value != "bridge" || sv.Gain != 5 {
		t.Fatalf("BestSingle[a] = %+v, want bridge/+5", sv)
	}
	if sv, ok := res.BestSingle["c"]; !ok || sv.Value != "2" || sv.Gain != 3 {
		t.Fatalf("BestSingle[c] = %+v, want 2/+3", sv)
	}
	// x alone does not fail; best is either value with gain 0.
	if sv, ok := res.BestSingle["x"]; !ok || sv.Gain != 0 {
		t.Fatalf("BestSingle[x] = %+v, want gain 0", sv)
	}
}

func TestQuantifyRawCoverageWeighting(t *testing.T) {
	res := Quantify(testModel(), testProbe, Options{Weighting: WeightRawCoverage})
	// Under raw coverage, independent pairs DO get edges.
	if _, ok := res.Graph.Weight("a", "c"); !ok {
		t.Fatal("raw weighting should connect (a,c)")
	}
	// Conflict still pruned.
	if _, ok := res.Graph.Weight("x", "y"); ok {
		t.Fatal("conflicting pair got an edge under raw weighting")
	}
	// Heaviest pair is still (a,b) (raw 35).
	if w, _ := res.Graph.Weight("a", "b"); w != 1.0 {
		t.Fatalf("weight(a,b) = %v, want 1.0", w)
	}
}

func TestQuantifyProbeCount(t *testing.T) {
	res := Quantify(testModel(), testProbe, Options{})
	// 1 baseline + singles (2+2+2+1+1 = 8) + pair combos (ab=4, ac=4,
	// ax=2, ay=2, bc=4, bx=2, by=2, cx=2, cy=2, xy=1 = 25) = 34.
	if res.Probes != 34 {
		t.Fatalf("probes = %d, want 34", res.Probes)
	}
}

func TestQuantifyMaxValuesCap(t *testing.T) {
	m := configmodel.NewModel([]configmodel.Entity{
		{Name: "n", Default: "5", Values: []string{"5", "6", "7", "8"}},
		{Name: "m", Default: "1", Values: []string{"1", "2", "3", "4"}},
	})
	probe := func(cfg configmodel.Assignment) int { return 1 }
	res := Quantify(m, probe, Options{MaxValues: 2})
	// 1 baseline + 2+2 singles + 4 pair combos = 9.
	if res.Probes != 9 {
		t.Fatalf("capped probes = %d, want 9", res.Probes)
	}
}

func TestQuantifyDependencyPair(t *testing.T) {
	// f=on alone fails startup (missing dependency d); together they
	// succeed with a feature region — the bridge/bridge-address shape.
	m := configmodel.NewModel([]configmodel.Entity{
		{Name: "f", Default: "off", Values: []string{"on", "off"}},
		{Name: "d", Default: "", Values: []string{"10.0.0.2"}},
		{Name: "z", Default: "0", Values: []string{"0", "1"}},
	})
	probe := func(cfg configmodel.Assignment) int {
		if cfg["f"] == "on" && cfg["d"] == "" {
			return 0 // f requires d
		}
		cov := 20
		if cfg["f"] == "on" {
			cov += 15
		}
		return cov
	}
	res := Quantify(m, probe, Options{})
	w, ok := res.Graph.Weight("f", "d")
	if !ok || w != 1.0 {
		t.Fatalf("dependency edge (f,d) = %v,%v, want strongest edge", w, ok)
	}
	best := res.Best[PairKey("d", "f")]
	if best.ValueA != "on" || best.ValueB != "10.0.0.2" {
		// PairValues keeps model order (f before d).
		t.Fatalf("dependency best combo = %+v", best)
	}
	if _, ok := res.Graph.Weight("f", "z"); ok {
		t.Fatal("non-interacting pair (f,z) got an edge")
	}
}

func TestPairKeyCanonical(t *testing.T) {
	if PairKey("b", "a") != PairKey("a", "b") {
		t.Fatal("PairKey not canonical")
	}
	if PairKey("a", "b") == PairKey("a", "c") {
		t.Fatal("PairKey collides")
	}
}

func TestQuantifyAllConflicting(t *testing.T) {
	m := configmodel.NewModel([]configmodel.Entity{
		{Name: "p", Default: "1", Values: []string{"1"}},
		{Name: "q", Default: "1", Values: []string{"1"}},
	})
	res := Quantify(m, func(configmodel.Assignment) int { return 0 }, Options{})
	if res.Graph.EdgeCount() != 0 {
		t.Fatal("all-zero probe produced edges")
	}
	if len(res.Best) != 0 {
		t.Fatal("all-zero probe recorded best combos")
	}
	// Nodes still exist so the scheduler can distribute them.
	if res.Graph.NodeCount() != 2 {
		t.Fatalf("node count = %d", res.Graph.NodeCount())
	}
}

func TestQuantifyDeterministic(t *testing.T) {
	m := testModel()
	r1 := Quantify(m, testProbe, Options{})
	r2 := Quantify(m, testProbe, Options{})
	e1, e2 := r1.Graph.Edges(), r2.Graph.Edges()
	if len(e1) != len(e2) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}
