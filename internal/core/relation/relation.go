// Package relation implements Pairwise Relation Weight Quantification
// (paper §III-B1, Figure 3): it upgrades the generalized configuration
// model into a relation-aware configuration model by probing the startup
// coverage of every value combination of every entity pair.
//
// Coverage is the relation oracle: synergistic configurations unlock
// additional initialization paths when enabled together, while conflicting
// configurations fail startup and yield zero coverage. Each pair's weight
// is taken from its peak value combination; pairs whose every combination
// yields zero coverage get no edge; all weights are normalized into [0, 1].
//
// Two weightings are provided. WeightInteraction (the default) scores a
// combination by its coverage *gain over the two values' individual
// contributions* — cov(a=x, b=y) − cov(a=x) − cov(b=y) + cov(defaults) —
// so an edge exists only where the pair genuinely interacts (a dependency
// like bridge/bridge-address, or a feature synergy). This keeps the
// relation graph sparse, which is what lets Algorithm 2 carve distinct
// cohesive groups; scoring by raw coverage (WeightRawCoverage, kept as an
// ablation) makes the graph near-complete — every feature-heavy pair ties
// at the top — and the grouping degenerates toward a single group.
//
// Quantification is probe-bound, so Quantify plans the whole probe matrix
// up front — baseline, standalone values, pair combinations — and hands it
// to a memoizing worker-pool executor (package probe). Every distinct
// assignment boots exactly once (standalone probes are reused by pair
// scoring; combinations that collapse onto the defaults reuse the
// baseline), and scoring runs sequentially over the cached coverages in
// fixed pair order, so the Result is identical for any worker count.
package relation

import (
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/graph"
	"cmfuzz/internal/core/probe"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

// A Probe runs one startup of the subject under the given configuration
// and returns the startup branch coverage. Startup failure (a conflicting
// configuration) must return 0. The probe must be a pure function of the
// assignment and safe for concurrent calls (each call boots its own
// throwaway instance).
type Probe func(cfg configmodel.Assignment) int

// Weighting selects how a pair's relation weight is derived from its
// combination coverages.
type Weighting int

// The weighting strategies.
const (
	// WeightInteraction scores combinations by pairwise coverage gain
	// (see package comment). The default.
	WeightInteraction Weighting = iota
	// WeightRawCoverage scores combinations by their absolute startup
	// coverage — the paper's literal formula, kept for the ablation.
	WeightRawCoverage
)

// PairValues records the best-scoring value combination found for a pair
// of entities; the scheduler uses it to seed each group's initial
// configuration.
type PairValues struct {
	A, B   string
	ValueA string
	ValueB string
	// Cover is the raw startup coverage of the best combination.
	Cover int
	// Gain is the interaction score of the best combination.
	Gain int
}

// SingleValue records the best-scoring standalone value of one entity.
type SingleValue struct {
	Value string
	Cover int
	// Gain is the coverage gain over the default assignment.
	Gain int
}

// Result is the relation-aware configuration model: the weighted relation
// graph plus per-pair best combinations, per-entity best standalone
// values, and probing statistics.
type Result struct {
	Graph *graph.Graph
	// Best maps canonical pair keys (PairKey) to the best combination.
	Best map[string]PairValues
	// BestSingle maps entity names to their best standalone value.
	BestSingle map[string]SingleValue
	// Baseline is the startup coverage of the default assignment.
	Baseline int
	// Probes counts how many startups were actually executed. Duplicate
	// assignments across the probe matrix (standalone probes recurring
	// inside pair matrices, combinations collapsing onto the defaults)
	// are memoized, so Probes is the number of distinct configurations
	// booted.
	Probes int
	// ProbeRequests counts every probe the matrix asked for, including
	// the ones served from the memo cache; ProbeRequests − Probes is the
	// startup work memoization saved.
	ProbeRequests int
	// DroppedValues counts typical values the MaxValues cap excluded
	// from probing, summed over entities. The cap always preserves an
	// entity's default and the boundary values "0"/"1" when present, so
	// a non-zero count here only drops mid-range candidates.
	DroppedValues int
}

// PairKey returns the canonical map key for an unordered entity pair.
func PairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}

// Options tune quantification.
type Options struct {
	// MaxValues caps how many typical values per entity are probed
	// (0 means all). The paper explores all combinations; the cap exists
	// for very large Values sets. The entity default and the boundary
	// values "0" and "1" survive the cap; Result.DroppedValues counts
	// what it excluded.
	MaxValues int
	// Weighting selects the combination scoring (default
	// WeightInteraction).
	Weighting Weighting
	// Workers bounds the probe worker pool (0 means GOMAXPROCS). The
	// Result is identical for every worker count, including 1.
	Workers int
	// Telemetry, when non-nil, receives the probe executor's cache
	// statistics (probe_stats events and probe counters).
	Telemetry *telemetry.Recorder
	// Trace, when non-nil, is the parent wall-clock span under which
	// quantification records its phases: a relation.quantify span with
	// probe.plan, probe.execute and probe.score children. Nil (the
	// default) records nothing and costs one pointer check.
	Trace *trace.Span
}

// Quantify builds the relation-aware configuration model for the given
// generalized model, using probeFn as the startup-coverage oracle. Every
// unordered pair of entities is probed across the cross product of their
// typical values on top of the model's default assignment; distinct
// assignments are probed once, concurrently across Options.Workers.
func Quantify(model *configmodel.Model, probeFn Probe, opts Options) *Result {
	res := &Result{
		Graph:      graph.New(),
		Best:       make(map[string]PairValues),
		BestSingle: make(map[string]SingleValue),
	}
	entities := model.Entities()
	defaults := model.Defaults()

	span := opts.Trace.Child("relation.quantify", trace.A("entities", len(entities)))
	defer span.End()
	plan := span.Child("probe.plan")

	// Plan the typical-value sets once per entity.
	vals := make([][]string, len(entities))
	for i, e := range entities {
		v, dropped := candidateValues(e, opts)
		vals[i] = v
		res.DroppedValues += dropped
	}

	// Plan the full probe matrix in scoring order: baseline, standalone
	// values, then pair combinations.
	var cfgs []configmodel.Assignment
	cfgs = append(cfgs, defaults)
	for i, e := range entities {
		for _, v := range vals[i] {
			cfg := defaults.Clone()
			cfg[e.Name] = v
			cfgs = append(cfgs, cfg)
		}
	}
	for i := 0; i < len(entities); i++ {
		for j := i + 1; j < len(entities); j++ {
			for _, x := range vals[i] {
				for _, y := range vals[j] {
					cfg := defaults.Clone()
					cfg[entities[i].Name] = x
					cfg[entities[j].Name] = y
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}

	plan.Set("configs", len(cfgs))
	plan.End()

	// Execute the matrix across the worker pool, memoized.
	execSpan := span.Child("probe.execute", trace.A("configs", len(cfgs)))
	ex := probe.NewExecutor(probe.Func(probeFn), opts.Workers)
	ex.SetTelemetry(opts.Telemetry)
	ex.SetTrace(execSpan)
	covs := ex.Batch(cfgs)
	res.Probes = ex.Stats().Startups
	res.ProbeRequests = len(cfgs)
	execSpan.Set("startups", res.Probes)
	execSpan.End()
	score := span.Child("probe.score")
	defer score.End()

	// Merge sequentially, consuming coverages in planning order, so the
	// result is the same for any worker count.
	cursor := 0
	nextCov := func() int {
		cov := covs[cursor]
		cursor++
		return cov
	}
	res.Baseline = nextCov()

	// Standalone scoring: one coverage per (entity, value).
	singles := make(map[string]map[string]int, len(entities))
	for i, e := range entities {
		res.Graph.AddNode(e.Name)
		singles[e.Name] = make(map[string]int, len(vals[i]))
		best := SingleValue{Gain: -1 << 30}
		for _, v := range vals[i] {
			cov := nextCov()
			singles[e.Name][v] = cov
			if gain := cov - res.Baseline; cov > 0 && gain > best.Gain {
				best = SingleValue{Value: v, Cover: cov, Gain: gain}
			}
		}
		if best.Cover > 0 {
			res.BestSingle[e.Name] = best
		}
	}

	// Pairwise combination scoring, in fixed pair order.
	for i := 0; i < len(entities); i++ {
		for j := i + 1; j < len(entities); j++ {
			a, b := entities[i], entities[j]
			best, anyCover := scorePair(a, b, vals[i], vals[j], nextCov, singles, res.Baseline, opts)
			if !anyCover {
				// Zero coverage across all combinations: conflicting pair,
				// no edge (paper §III-B1).
				continue
			}
			var weight float64
			switch opts.Weighting {
			case WeightRawCoverage:
				weight = float64(best.Cover)
			default:
				if best.Gain <= 0 {
					continue // no interaction: no relation edge
				}
				weight = float64(best.Gain)
			}
			res.Graph.AddEdge(a.Name, b.Name, weight)
			res.Best[PairKey(a.Name, b.Name)] = best
		}
	}
	res.Graph.Normalize()
	score.Set("edges", res.Graph.EdgeCount())
	return res
}

// scorePair folds the probed coverages of all value combinations of
// entities a and b into the best one (by the configured score) plus
// whether any combination achieved non-zero coverage.
func scorePair(a, b configmodel.Entity, va, vb []string, nextCov func() int, singles map[string]map[string]int, baseline int, opts Options) (PairValues, bool) {
	best := PairValues{A: a.Name, B: b.Name, Gain: -1 << 30, Cover: -1}
	anyCover := false
	for _, x := range va {
		for _, y := range vb {
			cov := nextCov()
			if cov > 0 {
				anyCover = true
			} else {
				continue
			}
			// Interaction: gain of the combination over the individual
			// contributions (inclusion–exclusion against the baseline).
			gain := cov - singles[a.Name][x] - singles[b.Name][y] + baseline
			better := false
			switch opts.Weighting {
			case WeightRawCoverage:
				better = cov > best.Cover
			default:
				better = gain > best.Gain || (gain == best.Gain && cov > best.Cover)
			}
			if better {
				best = PairValues{A: a.Name, B: b.Name, ValueA: x, ValueB: y, Cover: cov, Gain: gain}
			}
		}
	}
	return best, anyCover
}

// candidateValues derives the probed value set of one entity: its typical
// values, deduplicated, capped at Options.MaxValues. The cap keeps the
// entity's default and the boundary values "0"/"1" (the values Table II's
// boundary-condition bugs depend on) in preference to mid-range
// candidates; the second return value counts what was dropped.
func candidateValues(e configmodel.Entity, opts Options) ([]string, int) {
	if len(e.Values) == 0 {
		if e.Default != "" {
			return []string{e.Default}, 0
		}
		return []string{""}, 0
	}
	vals := dedupValues(e.Values)
	if opts.MaxValues <= 0 || len(vals) <= opts.MaxValues {
		return vals, 0
	}
	// Reserve slots for the must-keep values present in the set, then
	// fill the rest in original order, preserving relative order overall.
	must := make(map[string]bool, 3)
	reserved := 0
	for _, p := range []string{e.Default, "0", "1"} {
		if p == "" || must[p] || reserved >= opts.MaxValues {
			continue
		}
		for _, v := range vals {
			if v == p {
				must[p] = true
				reserved++
				break
			}
		}
	}
	out := make([]string, 0, opts.MaxValues)
	room := opts.MaxValues - reserved
	for _, v := range vals {
		switch {
		case must[v]:
			out = append(out, v)
		case room > 0:
			out = append(out, v)
			room--
		}
	}
	return out, len(vals) - len(out)
}

// dedupValues removes duplicate values, keeping first occurrences in
// order.
func dedupValues(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, v := range in {
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}
