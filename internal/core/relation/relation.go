// Package relation implements Pairwise Relation Weight Quantification
// (paper §III-B1, Figure 3): it upgrades the generalized configuration
// model into a relation-aware configuration model by probing the startup
// coverage of every value combination of every entity pair.
//
// Coverage is the relation oracle: synergistic configurations unlock
// additional initialization paths when enabled together, while conflicting
// configurations fail startup and yield zero coverage. Each pair's weight
// is taken from its peak value combination; pairs whose every combination
// yields zero coverage get no edge; all weights are normalized into [0, 1].
//
// Two weightings are provided. WeightInteraction (the default) scores a
// combination by its coverage *gain over the two values' individual
// contributions* — cov(a=x, b=y) − cov(a=x) − cov(b=y) + cov(defaults) —
// so an edge exists only where the pair genuinely interacts (a dependency
// like bridge/bridge-address, or a feature synergy). This keeps the
// relation graph sparse, which is what lets Algorithm 2 carve distinct
// cohesive groups; scoring by raw coverage (WeightRawCoverage, kept as an
// ablation) makes the graph near-complete — every feature-heavy pair ties
// at the top — and the grouping degenerates toward a single group.
package relation

import (
	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/core/graph"
)

// A Probe runs one startup of the subject under the given configuration
// and returns the startup branch coverage. Startup failure (a conflicting
// configuration) must return 0.
type Probe func(cfg configmodel.Assignment) int

// Weighting selects how a pair's relation weight is derived from its
// combination coverages.
type Weighting int

// The weighting strategies.
const (
	// WeightInteraction scores combinations by pairwise coverage gain
	// (see package comment). The default.
	WeightInteraction Weighting = iota
	// WeightRawCoverage scores combinations by their absolute startup
	// coverage — the paper's literal formula, kept for the ablation.
	WeightRawCoverage
)

// PairValues records the best-scoring value combination found for a pair
// of entities; the scheduler uses it to seed each group's initial
// configuration.
type PairValues struct {
	A, B   string
	ValueA string
	ValueB string
	// Cover is the raw startup coverage of the best combination.
	Cover int
	// Gain is the interaction score of the best combination.
	Gain int
}

// SingleValue records the best-scoring standalone value of one entity.
type SingleValue struct {
	Value string
	Cover int
	// Gain is the coverage gain over the default assignment.
	Gain int
}

// Result is the relation-aware configuration model: the weighted relation
// graph plus per-pair best combinations, per-entity best standalone
// values, and probing statistics.
type Result struct {
	Graph *graph.Graph
	// Best maps canonical pair keys (PairKey) to the best combination.
	Best map[string]PairValues
	// BestSingle maps entity names to their best standalone value.
	BestSingle map[string]SingleValue
	// Baseline is the startup coverage of the default assignment.
	Baseline int
	// Probes counts how many startups were executed.
	Probes int
}

// PairKey returns the canonical map key for an unordered entity pair.
func PairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}

// Options tune quantification.
type Options struct {
	// MaxValues caps how many typical values per entity are probed
	// (0 means all). The paper explores all combinations; the cap exists
	// for very large Values sets.
	MaxValues int
	// Weighting selects the combination scoring (default
	// WeightInteraction).
	Weighting Weighting
}

// Quantify builds the relation-aware configuration model for the given
// generalized model, using probe as the startup-coverage oracle. Every
// unordered pair of entities is probed across the cross product of their
// typical values on top of the model's default assignment.
func Quantify(model *configmodel.Model, probe Probe, opts Options) *Result {
	res := &Result{
		Graph:      graph.New(),
		Best:       make(map[string]PairValues),
		BestSingle: make(map[string]SingleValue),
	}
	entities := model.Entities()
	defaults := model.Defaults()

	res.Probes++
	res.Baseline = probe(defaults)

	// Standalone probes: one per (entity, value).
	singles := make(map[string]map[string]int, len(entities))
	for _, e := range entities {
		res.Graph.AddNode(e.Name)
		vals := candidateValues(e, opts)
		singles[e.Name] = make(map[string]int, len(vals))
		best := SingleValue{Gain: -1 << 30}
		for _, v := range vals {
			cfg := defaults.Clone()
			cfg[e.Name] = v
			res.Probes++
			cov := probe(cfg)
			singles[e.Name][v] = cov
			if gain := cov - res.Baseline; cov > 0 && gain > best.Gain {
				best = SingleValue{Value: v, Cover: cov, Gain: gain}
			}
		}
		if best.Cover > 0 {
			res.BestSingle[e.Name] = best
		}
	}

	// Pairwise combination probes.
	for i := 0; i < len(entities); i++ {
		for j := i + 1; j < len(entities); j++ {
			a, b := entities[i], entities[j]
			best, anyCover := probePair(defaults, a, b, probe, singles, res.Baseline, opts, &res.Probes)
			if !anyCover {
				// Zero coverage across all combinations: conflicting pair,
				// no edge (paper §III-B1).
				continue
			}
			var weight float64
			switch opts.Weighting {
			case WeightRawCoverage:
				weight = float64(best.Cover)
			default:
				if best.Gain <= 0 {
					continue // no interaction: no relation edge
				}
				weight = float64(best.Gain)
			}
			res.Graph.AddEdge(a.Name, b.Name, weight)
			res.Best[PairKey(a.Name, b.Name)] = best
		}
	}
	res.Graph.Normalize()
	return res
}

// probePair explores all value combinations of entities a and b and
// returns the best one (by the configured score) plus whether any
// combination achieved non-zero coverage.
func probePair(defaults configmodel.Assignment, a, b configmodel.Entity, probe Probe, singles map[string]map[string]int, baseline int, opts Options, probes *int) (PairValues, bool) {
	va := candidateValues(a, opts)
	vb := candidateValues(b, opts)
	best := PairValues{A: a.Name, B: b.Name, Gain: -1 << 30, Cover: -1}
	anyCover := false
	for _, x := range va {
		for _, y := range vb {
			cfg := defaults.Clone()
			cfg[a.Name] = x
			cfg[b.Name] = y
			*probes++
			cov := probe(cfg)
			if cov > 0 {
				anyCover = true
			} else {
				continue
			}
			// Interaction: gain of the combination over the individual
			// contributions (inclusion–exclusion against the baseline).
			gain := cov - singles[a.Name][x] - singles[b.Name][y] + baseline
			better := false
			switch opts.Weighting {
			case WeightRawCoverage:
				better = cov > best.Cover
			default:
				better = gain > best.Gain || (gain == best.Gain && cov > best.Cover)
			}
			if better {
				best = PairValues{A: a.Name, B: b.Name, ValueA: x, ValueB: y, Cover: cov, Gain: gain}
			}
		}
	}
	return best, anyCover
}

func candidateValues(e configmodel.Entity, opts Options) []string {
	vals := e.Values
	if len(vals) == 0 {
		if e.Default != "" {
			return []string{e.Default}
		}
		return []string{""}
	}
	if opts.MaxValues > 0 && len(vals) > opts.MaxValues {
		vals = vals[:opts.MaxValues]
	}
	return vals
}
