package relation

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"cmfuzz/internal/core/configmodel"
)

// benchProbe simulates a startup probe: booting a protocol subject is
// dominated by startup latency (process exec, socket setup, config
// parsing), modeled as a 1ms wait plus a little hashing CPU. Latency-
// bound startups are exactly what the executor overlaps, so the
// benchmark reflects the deployment win rather than raw CPU scaling.
func benchProbe(cfg configmodel.Assignment) int {
	time.Sleep(time.Millisecond)
	sum := sha256.Sum256([]byte(cfg.String()))
	for i := 0; i < 200; i++ {
		sum = sha256.Sum256(sum[:])
	}
	return 100 + int(binary.LittleEndian.Uint16(sum[:2])%64)
}

func benchModel() *configmodel.Model {
	var ents []configmodel.Entity
	for i := 0; i < 8; i++ {
		ents = append(ents, configmodel.Entity{
			Name:    string(rune('a' + i)),
			Default: "d0",
			Values:  []string{"d0", "v1", "v2", "v3"},
		})
	}
	return configmodel.NewModel(ents)
}

// BenchmarkQuantify measures relation quantification of an 8-entity,
// 4-value model (277 unique startups) at several probe worker counts.
// workers=1 is the pre-executor sequential path; results are
// byte-identical at every worker count.
func BenchmarkQuantify(b *testing.B) {
	model := benchModel()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := Quantify(model, benchProbe, Options{Workers: workers})
				if res.Probes == 0 {
					b.Fatal("no probes executed")
				}
			}
		})
	}
}
