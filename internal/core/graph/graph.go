// Package graph provides the weighted undirected graph underlying the
// relation-aware configuration model (the paper builds this with networkx;
// here it is a compact stdlib-only implementation). Nodes are configuration
// entity names; edge weights are quantified pairwise relations.
package graph

import "sort"

// An Edge connects two nodes with a relation weight. A and B are stored
// in lexicographic order so each undirected edge has one canonical form.
type Edge struct {
	A, B   string
	Weight float64
}

// A Graph is a weighted undirected graph. The zero value is not usable;
// create graphs with New.
type Graph struct {
	index map[string]int
	names []string
	adj   []map[int]float64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[string]int)}
}

// AddNode inserts a node if absent and returns its index.
func (g *Graph) AddNode(name string) int {
	if i, ok := g.index[name]; ok {
		return i
	}
	i := len(g.names)
	g.index[name] = i
	g.names = append(g.names, name)
	g.adj = append(g.adj, make(map[int]float64))
	return i
}

// HasNode reports whether name is a node.
func (g *Graph) HasNode(name string) bool {
	_, ok := g.index[name]
	return ok
}

// AddEdge connects a and b with weight w, inserting missing nodes and
// overwriting any existing weight. Self-loops are ignored.
func (g *Graph) AddEdge(a, b string, w float64) {
	if a == b {
		return
	}
	ia, ib := g.AddNode(a), g.AddNode(b)
	g.adj[ia][ib] = w
	g.adj[ib][ia] = w
}

// Weight returns the weight of edge (a, b) and whether it exists.
func (g *Graph) Weight(a, b string) (float64, bool) {
	ia, ok := g.index[a]
	if !ok {
		return 0, false
	}
	ib, ok := g.index[b]
	if !ok {
		return 0, false
	}
	w, ok := g.adj[ia][ib]
	return w, ok
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.names) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, m := range g.adj {
		n += len(m)
	}
	return n / 2
}

// Nodes returns the node names in insertion order. The slice aliases
// internal storage and must not be modified.
func (g *Graph) Nodes() []string { return g.names }

// Neighbors returns the names adjacent to name, sorted.
func (g *Graph) Neighbors(name string) []string {
	i, ok := g.index[name]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.adj[i]))
	for j := range g.adj[i] {
		out = append(out, g.names[j])
	}
	sort.Strings(out)
	return out
}

// Degree returns how many edges touch name.
func (g *Graph) Degree(name string) int {
	i, ok := g.index[name]
	if !ok {
		return 0
	}
	return len(g.adj[i])
}

// Edges returns every undirected edge exactly once, in canonical
// (A, B) lexicographic order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for ia, m := range g.adj {
		for ib, w := range m {
			if ia < ib {
				a, b := g.names[ia], g.names[ib]
				if a > b {
					a, b = b, a
				}
				out = append(out, Edge{A: a, B: b, Weight: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// SortedEdges returns the edges sorted by descending weight — the order
// Algorithm 2 processes them in. Ties break on node names so allocation
// is deterministic.
func (g *Graph) SortedEdges() []Edge {
	edges := g.Edges()
	sort.SliceStable(edges, func(i, j int) bool {
		return edges[i].Weight > edges[j].Weight
	})
	return edges
}

// MaxWeight returns the largest edge weight, or 0 for an edgeless graph.
func (g *Graph) MaxWeight() float64 {
	max := 0.0
	for _, m := range g.adj {
		for _, w := range m {
			if w > max {
				max = w
			}
		}
	}
	return max
}

// Normalize scales every edge weight into [0, 1] by dividing by the
// maximum weight (paper §III-B1). An edgeless graph is unchanged.
func (g *Graph) Normalize() {
	max := g.MaxWeight()
	if max <= 0 {
		return
	}
	for _, m := range g.adj {
		for k, w := range m {
			m[k] = w / max
		}
	}
}

// Components returns the connected components, each sorted, ordered by
// their smallest member.
func (g *Graph) Components() [][]string {
	uf := NewUnionFind(len(g.names))
	for ia, m := range g.adj {
		for ib := range m {
			uf.Union(ia, ib)
		}
	}
	groups := make(map[int][]string)
	for i, name := range g.names {
		root := uf.Find(i)
		groups[root] = append(groups[root], name)
	}
	out := make([][]string, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// A UnionFind is a disjoint-set forest over integer elements.
type UnionFind struct {
	parent []int
	rank   []int
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set, with path compression.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether they were
// previously disjoint.
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	return true
}
