package graph

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	i := g.AddNode("a")
	if g.AddNode("a") != i {
		t.Fatal("re-adding node changed index")
	}
	if !g.HasNode("a") || g.HasNode("b") {
		t.Fatal("HasNode wrong")
	}
	if g.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d", g.NodeCount())
	}
}

func TestAddEdgeUndirected(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 0.5)
	if w, ok := g.Weight("a", "b"); !ok || w != 0.5 {
		t.Fatalf("Weight(a,b) = %v,%v", w, ok)
	}
	if w, ok := g.Weight("b", "a"); !ok || w != 0.5 {
		t.Fatalf("Weight(b,a) = %v,%v", w, ok)
	}
	g.AddEdge("b", "a", 0.9) // overwrite via other direction
	if w, _ := g.Weight("a", "b"); w != 0.9 {
		t.Fatalf("overwritten weight = %v", w)
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New()
	g.AddEdge("a", "a", 1)
	if g.EdgeCount() != 0 {
		t.Fatal("self loop was added")
	}
}

func TestWeightMissing(t *testing.T) {
	g := New()
	g.AddNode("a")
	if _, ok := g.Weight("a", "zz"); ok {
		t.Fatal("missing node edge reported present")
	}
	if _, ok := g.Weight("zz", "a"); ok {
		t.Fatal("missing node edge reported present")
	}
	g.AddNode("b")
	if _, ok := g.Weight("a", "b"); ok {
		t.Fatal("unconnected nodes reported connected")
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := New()
	g.AddEdge("hub", "z", 1)
	g.AddEdge("hub", "a", 2)
	g.AddEdge("hub", "m", 3)
	nb := g.Neighbors("hub")
	want := []string{"a", "m", "z"}
	if len(nb) != 3 {
		t.Fatalf("Neighbors = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", nb, want)
		}
	}
	if g.Degree("hub") != 3 || g.Degree("a") != 1 || g.Degree("nope") != 0 {
		t.Fatal("Degree wrong")
	}
	if g.Neighbors("nope") != nil {
		t.Fatal("Neighbors of missing node should be nil")
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New()
	g.AddEdge("z", "a", 1)
	g.AddEdge("b", "c", 2)
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges = %v", edges)
	}
	if edges[0].A != "a" || edges[0].B != "z" {
		t.Fatalf("edge not canonical: %+v", edges[0])
	}
	if edges[1].A != "b" || edges[1].B != "c" {
		t.Fatalf("order wrong: %+v", edges[1])
	}
}

func TestSortedEdgesDescending(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 0.2)
	g.AddEdge("c", "d", 0.9)
	g.AddEdge("e", "f", 0.5)
	g.AddEdge("g", "h", 0.5) // tie with e-f
	edges := g.SortedEdges()
	weights := []float64{0.9, 0.5, 0.5, 0.2}
	for i, w := range weights {
		if edges[i].Weight != w {
			t.Fatalf("SortedEdges[%d].Weight = %v, want %v", i, edges[i].Weight, w)
		}
	}
	// Ties stay in canonical name order (stable sort over name-sorted input).
	if edges[1].A != "e" || edges[2].A != "g" {
		t.Fatalf("tie order wrong: %+v %+v", edges[1], edges[2])
	}
}

func TestNormalize(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 10)
	g.AddEdge("c", "d", 5)
	g.Normalize()
	if w, _ := g.Weight("a", "b"); w != 1 {
		t.Fatalf("max weight normalized to %v", w)
	}
	if w, _ := g.Weight("c", "d"); w != 0.5 {
		t.Fatalf("half weight normalized to %v", w)
	}
	// Edgeless graph: no panic.
	New().Normalize()
	if g.MaxWeight() != 1 {
		t.Fatalf("MaxWeight after normalize = %v", g.MaxWeight())
	}
}

func TestComponents(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "c", 1)
	g.AddEdge("x", "y", 1)
	g.AddNode("lone")
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != "a" {
		t.Fatalf("first component = %v", comps[0])
	}
	if comps[1][0] != "lone" {
		t.Fatalf("second component = %v", comps[1])
	}
	if len(comps[2]) != 2 {
		t.Fatalf("third component = %v", comps[2])
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if !uf.Union(0, 1) {
		t.Fatal("first union reported redundant")
	}
	if uf.Union(1, 0) {
		t.Fatal("redundant union reported new")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if uf.Find(1) != uf.Find(2) {
		t.Fatal("merged sets have different roots")
	}
	if uf.Find(4) == uf.Find(0) {
		t.Fatal("disjoint element merged")
	}
}

// Property: edge count equals len(Edges) and every reported weight is
// retrievable symmetrically.
func TestQuickEdgesConsistent(t *testing.T) {
	f := func(pairs []uint16, ws []uint8) bool {
		g := New()
		nodeName := func(v uint16) string { return string(rune('a' + v%26)) }
		for i := 0; i+1 < len(pairs); i += 2 {
			w := 1.0
			if i/2 < len(ws) {
				w = float64(ws[i/2]) / 255
			}
			g.AddEdge(nodeName(pairs[i]), nodeName(pairs[i+1]), w)
		}
		edges := g.Edges()
		if len(edges) != g.EdgeCount() {
			return false
		}
		for _, e := range edges {
			w1, ok1 := g.Weight(e.A, e.B)
			w2, ok2 := g.Weight(e.B, e.A)
			if !ok1 || !ok2 || w1 != e.Weight || w2 != e.Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after Normalize all weights are in [0,1] and the ordering of
// edges by weight is preserved.
func TestQuickNormalizePreservesOrder(t *testing.T) {
	f := func(ws []uint16) bool {
		g := New()
		for i, w := range ws {
			a := string(rune('a'+i%26)) + "1"
			b := string(rune('a'+i%26)) + "2"
			g.AddEdge(a+string(rune('0'+i/26%10)), b+string(rune('0'+i/26%10)), float64(w))
		}
		before := g.SortedEdges()
		g.Normalize()
		after := g.SortedEdges()
		if len(before) != len(after) {
			return false
		}
		for i := range after {
			if after[i].Weight < 0 || after[i].Weight > 1+1e-12 {
				return false
			}
			if before[i].A != after[i].A || before[i].B != after[i].B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Components partition the node set.
func TestQuickComponentsPartition(t *testing.T) {
	f := func(pairs []uint8) bool {
		g := New()
		for i := 0; i+1 < len(pairs); i += 2 {
			g.AddEdge(string(rune('a'+pairs[i]%16)), string(rune('a'+pairs[i+1]%16)), 1)
		}
		var all []string
		for _, comp := range g.Components() {
			all = append(all, comp...)
		}
		sort.Strings(all)
		nodes := append([]string{}, g.Nodes()...)
		sort.Strings(nodes)
		if len(all) != len(nodes) {
			return false
		}
		for i := range all {
			if all[i] != nodes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeNaNFree(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 0)
	g.Normalize() // max weight 0: unchanged, no NaN
	if w, _ := g.Weight("a", "b"); math.IsNaN(w) {
		t.Fatal("Normalize produced NaN")
	}
}
