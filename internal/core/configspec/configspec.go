// Package configspec implements the Configuration Model Identification
// front half of CMFuzz (paper §III-A1, Algorithm 1): it systematically
// extracts configuration items from the two places IoT protocols define
// them — command-line interface options and configuration files — and
// consolidates them into one item set for model construction.
//
// CLI options are recognized with pattern matching (the paper uses Python
// regular expressions; this package uses Go's regexp). Configuration files
// are dispatched by detected format: key-value files are parsed line by
// line, hierarchical files (JSON, XML) are parsed recursively, and
// everything else falls back to keyword heuristics.
package configspec

import (
	"sort"
	"strings"
)

// Source records where a configuration item was discovered.
type Source int

// The extraction sources of Algorithm 1.
const (
	SourceCLI Source = iota
	SourceKeyValue
	SourceHierarchical
	SourceCustom
)

var sourceNames = [...]string{
	SourceCLI:          "cli",
	SourceKeyValue:     "key-value",
	SourceHierarchical: "hierarchical",
	SourceCustom:       "custom",
}

// String names the source.
func (s Source) String() string {
	if s < 0 || int(s) >= len(sourceNames) {
		return "unknown"
	}
	return sourceNames[s]
}

// An Item is one raw configuration item: the name of an adjustable
// parameter, its default value as found, any candidate values the source
// reveals (enumerations in help text, commented-out alternatives), and
// provenance.
type Item struct {
	Name    string
	Default string
	Values  []string
	Source  Source
	Doc     string
}

// A File is one configuration file input to extraction.
type File struct {
	Name    string
	Content string
}

// Input carries Algorithm 1's two inputs: CLI option documentation
// (typically --help output) and configuration files.
type Input struct {
	CLIHelp []string
	Files   []File
}

// Extract implements Algorithm 1. It extracts items from every CLI help
// text and every configuration file (dispatching by detected format) and
// returns the consolidated, de-duplicated item set in stable name order.
func Extract(in Input) []Item {
	var all []Item
	for _, help := range in.CLIHelp {
		all = append(all, ExtractCLIOptions(help)...)
	}
	for _, f := range in.Files {
		switch DetectFormat(f.Content) {
		case FormatKeyValue:
			all = append(all, ExtractKeyValue(f.Content)...)
		case FormatJSON:
			all = append(all, ExtractJSON(f.Content)...)
		case FormatXML:
			all = append(all, ExtractXML(f.Content)...)
		default:
			all = append(all, ExtractCustom(f.Content)...)
		}
	}
	return Consolidate(all)
}

// Consolidate de-duplicates items by normalized name, merging candidate
// values and preferring the richest default/documentation, and returns
// the set sorted by name.
func Consolidate(items []Item) []Item {
	byName := make(map[string]*Item)
	order := make([]string, 0, len(items))
	for _, it := range items {
		key := NormalizeName(it.Name)
		if key == "" {
			continue
		}
		cur, ok := byName[key]
		if !ok {
			cp := it
			cp.Name = key
			cp.Values = dedupStrings(cp.Values)
			byName[key] = &cp
			order = append(order, key)
			continue
		}
		switch {
		case cur.Default == "":
			cur.Default = it.Default
		case it.Default != "" && it.Default != cur.Default:
			// A conflicting default from another source is a candidate value.
			cur.Values = append(cur.Values, it.Default)
		}
		if cur.Doc == "" {
			cur.Doc = it.Doc
		}
		cur.Values = dedupStrings(append(cur.Values, it.Values...))
	}
	sort.Strings(order)
	out := make([]Item, 0, len(order))
	for _, key := range order {
		out = append(out, *byName[key])
	}
	return out
}

// NormalizeName canonicalizes an item name: leading dashes are stripped,
// the name is lower-cased, and internal underscores become hyphens, so
// "--Max_Connections" and "max-connections" unify.
func NormalizeName(name string) string {
	name = strings.TrimLeft(name, "-")
	name = strings.ToLower(strings.TrimSpace(name))
	return strings.ReplaceAll(name, "_", "-")
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		s = strings.TrimSpace(s)
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
