package configspec

import (
	"sort"
	"testing"
	"testing/quick"
)

func findItem(t *testing.T, items []Item, name string) Item {
	t.Helper()
	for _, it := range items {
		if it.Name == name {
			return it
		}
	}
	t.Fatalf("item %q not found in %v", name, names(items))
	return Item{}
}

func hasItem(items []Item, name string) bool {
	for _, it := range items {
		if it.Name == name {
			return true
		}
	}
	return false
}

func names(items []Item) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.Name
	}
	return out
}

const sampleHelp = `Usage: broker [options]
  -p, --port PORT          listen port (default: 1883)
  --max-connections N      maximum client connections (default: 100)
  --qos-level LEVEL        delivery guarantee, one of: 0, 1, 2
  --persistence            enable message persistence
  --auth-mode MODE         authentication {none|password|certificate}
  -v                       verbose logging
  --log-dest <file>        log destination (default: /var/log/broker.log)
`

func TestExtractCLIOptions(t *testing.T) {
	items := ExtractCLIOptions(sampleHelp)

	port := findItem(t, items, "port")
	if port.Default != "1883" {
		t.Errorf("port default = %q, want 1883", port.Default)
	}

	maxConn := findItem(t, items, "max-connections")
	if maxConn.Default != "100" {
		t.Errorf("max-connections default = %q", maxConn.Default)
	}

	qos := findItem(t, items, "qos-level")
	if len(qos.Values) != 3 {
		t.Errorf("qos-level values = %v, want 3 enum values", qos.Values)
	}

	pers := findItem(t, items, "persistence")
	if len(pers.Values) != 2 || pers.Default != "false" {
		t.Errorf("bare flag persistence = %+v, want boolean candidates", pers)
	}

	auth := findItem(t, items, "auth-mode")
	wantAuth := []string{"none", "password", "certificate"}
	if len(auth.Values) != 3 {
		t.Fatalf("auth-mode values = %v", auth.Values)
	}
	for i, v := range wantAuth {
		if auth.Values[i] != v {
			t.Errorf("auth-mode values[%d] = %q, want %q", i, auth.Values[i], v)
		}
	}

	verbose := findItem(t, items, "v")
	if len(verbose.Values) != 2 {
		t.Errorf("short flag -v values = %v", verbose.Values)
	}

	logDest := findItem(t, items, "log-dest")
	if logDest.Default != "/var/log/broker.log" {
		t.Errorf("log-dest default = %q", logDest.Default)
	}
}

func TestParseArgv(t *testing.T) {
	items := ParseArgv([]string{"--port=5683", "--verbose", "-k", "60", "--psk", "secret", "-d"})
	byName := map[string]Item{}
	for _, it := range items {
		byName[it.Name] = it
	}
	if byName["port"].Default != "5683" {
		t.Errorf("port = %+v", byName["port"])
	}
	if byName["verbose"].Default != "true" {
		t.Errorf("verbose = %+v", byName["verbose"])
	}
	if byName["k"].Default != "60" {
		t.Errorf("k = %+v", byName["k"])
	}
	if byName["psk"].Default != "secret" {
		t.Errorf("psk = %+v", byName["psk"])
	}
	if byName["d"].Default != "true" {
		t.Errorf("d = %+v", byName["d"])
	}
}

func TestDetectFormat(t *testing.T) {
	cases := []struct {
		name    string
		content string
		want    Format
	}{
		{"json object", `{"a": 1}`, FormatJSON},
		{"json array", `[{"a": 1}]`, FormatJSON},
		{"xml", `<Config><A>1</A></Config>`, FormatXML},
		{"ini", "a=1\nb=2\nc=3\n", FormatKeyValue},
		{"ini with sections", "[s]\na=1\n# comment\nb = 2\n", FormatKeyValue},
		{"space pairs", "port 1883\nmax_connections 10\n", FormatKeyValue},
		{"bare toggles", "domain-needed\nbogus-priv\nexpand-hosts\nserver=1.1.1.1\n", FormatCustom},
		{"prose", "This file sets things.\nIt has no structure at all!()\n", FormatCustom},
		{"empty", "\n\n", FormatCustom},
		{"brace but invalid json", "{not json", FormatCustom},
	}
	for _, c := range cases {
		if got := DetectFormat(c.content); got != c.want {
			t.Errorf("%s: DetectFormat = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestExtractKeyValue(t *testing.T) {
	content := `
# The listen port
port = 1883
allow_anonymous = true
[bridge]
address = 10.0.0.1
# max_inflight = 20
; pure comment line
persistence true
`
	items := ExtractKeyValue(content)
	if it := findItem(t, items, "port"); it.Default != "1883" {
		t.Errorf("port = %+v", it)
	}
	if it := findItem(t, items, "bridge.address"); it.Default != "10.0.0.1" {
		t.Errorf("bridge.address = %+v", it)
	}
	mi := findItem(t, items, "bridge.max_inflight")
	if mi.Default != "" || len(mi.Values) != 1 || mi.Values[0] != "20" {
		t.Errorf("commented option = %+v, want candidate value 20 and empty default", mi)
	}
	if it := findItem(t, items, "bridge.persistence"); it.Default != "true" {
		t.Errorf("space pair = %+v", it)
	}
}

func TestExtractKeyValueDuplicateKeysMergeValues(t *testing.T) {
	items := ExtractKeyValue("listener=1883\nlistener=8883\n")
	it := findItem(t, items, "listener")
	if it.Default != "1883" || len(it.Values) != 1 || it.Values[0] != "8883" {
		t.Errorf("duplicate key handling = %+v", it)
	}
}

func TestExtractJSON(t *testing.T) {
	content := `{
  "transport": {"reliability": "reliable", "max_retries": 5},
  "discovery": {"peers": ["10.0.0.1", "10.0.0.2"], "enabled": true},
  "empty_list": [],
  "null_opt": null
}`
	items := ExtractJSON(content)
	if it := findItem(t, items, "transport.reliability"); it.Default != "reliable" {
		t.Errorf("reliability = %+v", it)
	}
	if it := findItem(t, items, "transport.max_retries"); it.Default != "5" {
		t.Errorf("max_retries = %+v", it)
	}
	if it := findItem(t, items, "discovery.peers"); it.Default != "10.0.0.1" {
		t.Errorf("array representative = %+v", it)
	}
	if it := findItem(t, items, "discovery.enabled"); it.Default != "true" {
		t.Errorf("enabled = %+v", it)
	}
	if !hasItem(items, "empty_list") || !hasItem(items, "null_opt") {
		t.Errorf("empty/null entries missing: %v", names(items))
	}
	if ExtractJSON("{bad") != nil {
		t.Error("invalid JSON should yield no items")
	}
	// Deterministic ordering.
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i].Name < items[j].Name }) {
		t.Error("JSON items not sorted")
	}
}

func TestExtractXML(t *testing.T) {
	content := `<CycloneDDS>
  <Domain Id="0">
    <General>
      <AllowMulticast>true</AllowMulticast>
      <MaxMessageSize>65500</MaxMessageSize>
    </General>
  </Domain>
</CycloneDDS>`
	items := ExtractXML(content)
	if it := findItem(t, items, "cyclonedds/domain/general/allowmulticast"); it.Default != "true" {
		t.Errorf("allowmulticast = %+v", it)
	}
	if it := findItem(t, items, "cyclonedds/domain/general/maxmessagesize"); it.Default != "65500" {
		t.Errorf("maxmessagesize = %+v", it)
	}
	if it := findItem(t, items, "cyclonedds/domain@id"); it.Default != "0" {
		t.Errorf("attribute = %+v", it)
	}
}

func TestExtractCustom(t *testing.T) {
	content := `# dnsmasq-like configuration
domain-needed
bogus-priv
server=8.8.8.8
cache-size 150
# dhcp-range=192.168.0.50,192.168.0.150
# This is a prose comment. It should be skipped entirely.
`
	items := ExtractCustom(content)
	if it := findItem(t, items, "domain-needed"); it.Default != "true" {
		t.Errorf("bare keyword = %+v", it)
	}
	if it := findItem(t, items, "server"); it.Default != "8.8.8.8" {
		t.Errorf("server = %+v", it)
	}
	if it := findItem(t, items, "cache-size"); it.Default != "150" {
		t.Errorf("cache-size = %+v", it)
	}
	dr := findItem(t, items, "dhcp-range")
	if dr.Default != "" || len(dr.Values) != 1 {
		t.Errorf("commented option = %+v", dr)
	}
	if hasItem(items, "This") {
		t.Error("prose comment leaked into items")
	}
}

func TestExtractConsolidates(t *testing.T) {
	in := Input{
		CLIHelp: []string{"  --port PORT   listen port (default: 1883)\n  --verbose   chatty\n"},
		Files: []File{
			{Name: "broker.conf", Content: "port = 8883\nmax_queue = 50\n"},
			{Name: "dds.json", Content: `{"qos": {"history": "keep_last"}}`},
			{Name: "dds.xml", Content: `<C><Tracing>off</Tracing></C>`},
			{Name: "extra.conf", Content: "fast-start\nodd line here ()\nmode=turbo\n"},
		},
	}
	items := Extract(in)
	// port appears in CLI and file; consolidated once, CLI default wins (first seen).
	port := findItem(t, items, "port")
	if port.Default != "1883" {
		t.Errorf("consolidated port default = %q", port.Default)
	}
	if len(port.Values) == 0 {
		t.Errorf("consolidated port lost file candidate: %+v", port)
	}
	for _, want := range []string{"verbose", "max-queue", "qos.history", "c/tracing", "fast-start", "mode"} {
		if !hasItem(items, want) {
			t.Errorf("missing consolidated item %q in %v", want, names(items))
		}
	}
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i].Name < items[j].Name }) {
		t.Error("Extract output not sorted by name")
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"--Max_Connections": "max-connections",
		"-v":                "v",
		"  port ":           "port",
		"a_b-c":             "a-b-c",
	}
	for in, want := range cases {
		if got := NormalizeName(in); got != want {
			t.Errorf("NormalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConsolidateDropsEmptyNames(t *testing.T) {
	items := Consolidate([]Item{{Name: "--"}, {Name: "ok", Default: "1"}})
	if len(items) != 1 || items[0].Name != "ok" {
		t.Fatalf("Consolidate = %v", names(items))
	}
}

func TestSourceAndFormatStrings(t *testing.T) {
	if SourceCLI.String() != "cli" || SourceCustom.String() != "custom" || Source(99).String() != "unknown" {
		t.Error("Source.String wrong")
	}
	if FormatJSON.String() != "json" || Format(99).String() != "unknown" {
		t.Error("Format.String wrong")
	}
}

// Property: extraction never panics on arbitrary content and items always
// have non-empty names.
func TestQuickExtractorsRobust(t *testing.T) {
	f := func(content string) bool {
		for _, items := range [][]Item{
			ExtractCLIOptions(content),
			ExtractKeyValue(content),
			ExtractJSON(content),
			ExtractXML(content),
			ExtractCustom(content),
			Extract(Input{CLIHelp: []string{content}, Files: []File{{Name: "f", Content: content}}}),
		} {
			for _, it := range items {
				if it.Name == "" {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Consolidate is idempotent.
func TestQuickConsolidateIdempotent(t *testing.T) {
	f := func(rawNames []string, defaults []string) bool {
		var items []Item
		for i, n := range rawNames {
			it := Item{Name: n}
			if i < len(defaults) {
				it.Default = defaults[i]
			}
			items = append(items, it)
		}
		once := Consolidate(items)
		twice := Consolidate(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i].Name != twice[i].Name || once[i].Default != twice[i].Default {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
