package configspec

import (
	"regexp"
	"strings"
)

// The CLI patterns the paper's pattern-matching parser recognizes:
// `--option=VALUE`, `--option VALUE`, bare `--flag`, and short `-f` forms,
// optionally preceded by a short alias (`-p, --port PORT`).
var (
	longOptRe  = regexp.MustCompile(`(?m)^\s*(?:-(\w),?\s+)?--([A-Za-z0-9][-A-Za-z0-9_.]*)(?:[= ]([A-Z][A-Z0-9_]*|<[^>]+>|\[[^\]]+\]))?\s*(.*)$`)
	shortOptRe = regexp.MustCompile(`(?m)^\s*-(\w)\s+(?:([A-Z][A-Z0-9_]*|<[^>]+>)\s+)?(.*)$`)
	defaultRe  = regexp.MustCompile(`[(\[]default:?\s*([^)\]]+)[)\]]`)
	enumSetRe  = regexp.MustCompile(`\{([^{}]+)\}|one of:\s+([A-Za-z0-9_,|/ :.-]+)`)
)

// ExtractCLIOptions parses a block of CLI documentation (typically --help
// output or a man-page OPTIONS section) and returns one Item per option.
// Long options win over short aliases on the same line; a short alias is
// recorded in the Doc. Defaults in "(default: X)" and enumerations in
// "{a|b|c}" or "one of: a, b, c" become the item's Default and Values.
func ExtractCLIOptions(help string) []Item {
	var items []Item
	seen := make(map[string]bool)
	for _, line := range strings.Split(help, "\n") {
		if m := longOptRe.FindStringSubmatch(line); m != nil {
			name := m[2]
			if seen[name] {
				continue
			}
			seen[name] = true
			it := Item{Name: name, Source: SourceCLI, Doc: strings.TrimSpace(m[4])}
			if m[1] != "" {
				it.Doc = strings.TrimSpace("alias -" + m[1] + "; " + it.Doc)
			}
			fillFromDescription(&it, m[3], line)
			items = append(items, it)
			continue
		}
		if m := shortOptRe.FindStringSubmatch(line); m != nil {
			name := m[1]
			if seen[name] {
				continue
			}
			seen[name] = true
			it := Item{Name: name, Source: SourceCLI, Doc: strings.TrimSpace(m[3])}
			fillFromDescription(&it, m[2], line)
			items = append(items, it)
		}
	}
	return items
}

// fillFromDescription mines the option's value placeholder and the full
// line for defaults and candidate values.
func fillFromDescription(it *Item, placeholder, line string) {
	if m := defaultRe.FindStringSubmatch(line); m != nil {
		it.Default = strings.TrimSpace(m[1])
	}
	if m := enumSetRe.FindStringSubmatch(line); m != nil {
		raw := m[1]
		if raw == "" {
			raw = m[2]
		}
		for _, v := range strings.FieldsFunc(raw, func(r rune) bool {
			return r == '|' || r == ',' || r == ' '
		}) {
			v = strings.TrimSpace(v)
			if v != "" {
				it.Values = append(it.Values, v)
			}
		}
	}
	// A bare flag (no value placeholder, no enum) is boolean-like: its
	// candidate values are presence and absence.
	if placeholder == "" && len(it.Values) == 0 && it.Default == "" {
		it.Values = []string{"true", "false"}
		it.Default = "false"
	}
}

// ParseArgv extracts items from a concrete argument vector, the other CLI
// configuration shape the paper mentions (`--option=value` / `-flag`).
func ParseArgv(argv []string) []Item {
	var items []Item
	for i := 0; i < len(argv); i++ {
		arg := argv[i]
		switch {
		case strings.HasPrefix(arg, "--"):
			name, val, ok := strings.Cut(arg[2:], "=")
			if name == "" {
				continue
			}
			it := Item{Name: name, Source: SourceCLI}
			if ok {
				it.Default = val
			} else if i+1 < len(argv) && !strings.HasPrefix(argv[i+1], "-") {
				it.Default = argv[i+1]
				i++
			} else {
				it.Default = "true"
				it.Values = []string{"true", "false"}
			}
			items = append(items, it)
		case strings.HasPrefix(arg, "-") && len(arg) > 1:
			it := Item{Name: arg[1:], Source: SourceCLI}
			if i+1 < len(argv) && !strings.HasPrefix(argv[i+1], "-") {
				it.Default = argv[i+1]
				i++
			} else {
				it.Default = "true"
				it.Values = []string{"true", "false"}
			}
			items = append(items, it)
		}
	}
	return items
}
