package configspec

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// Format classifies a configuration file's structure, driving Algorithm 1's
// format-specific extraction dispatch.
type Format int

// The formats DetectFileFormat distinguishes.
const (
	FormatKeyValue Format = iota
	FormatJSON
	FormatXML
	FormatCustom
)

var formatNames = [...]string{
	FormatKeyValue: "key-value",
	FormatJSON:     "json",
	FormatXML:      "xml",
	FormatCustom:   "custom",
}

// String names the format.
func (f Format) String() string {
	if f < 0 || int(f) >= len(formatNames) {
		return "unknown"
	}
	return formatNames[f]
}

// DetectFormat inspects file content and classifies it. JSON and XML are
// recognized by their leading syntax. A file whose non-comment lines are
// overwhelmingly `key = value` / `key value` pairs is key-value; files
// with a significant share of bare keyword lines (feature toggles,
// dnsmasq-style) or free-form text are custom and handled heuristically.
func DetectFormat(content string) Format {
	trimmed := strings.TrimSpace(content)
	if strings.HasPrefix(trimmed, "{") || strings.HasPrefix(trimmed, "[") {
		if json.Valid([]byte(trimmed)) {
			return FormatJSON
		}
	}
	if strings.HasPrefix(trimmed, "<") {
		return FormatXML
	}
	total, pairs, bare := 0, 0, 0
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") ||
			(strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]")) {
			continue
		}
		total++
		if k, v, ok := strings.Cut(line, "="); ok && isIdentifier(strings.TrimSpace(k)) && !strings.Contains(v, "=") {
			pairs++
			continue
		}
		// A space pair must be exactly two tokens (`port 1883`); prose
		// sentences have more, or end in punctuation.
		if fields := strings.Fields(line); len(fields) == 2 && isIdentifier(fields[0]) &&
			!strings.HasSuffix(fields[1], ".") && !strings.HasSuffix(fields[1], "!") {
			pairs++
			continue
		}
		if isIdentifier(line) {
			bare++
		}
	}
	if total == 0 {
		return FormatCustom
	}
	if bare*5 > total { // >20% bare feature toggles: unstandardized
		return FormatCustom
	}
	if pairs*4 >= total*3 { // >=75% pair lines: key-value
		return FormatKeyValue
	}
	return FormatCustom
}

// ExtractKeyValue parses an INI-style key-value file: `key = value` lines,
// `[section]` headers that prefix following keys as "section.key", and
// `#`/`;` comments. Commented-out assignments (`#key=value`) are mined as
// candidate values, the way real config files document their defaults.
func ExtractKeyValue(content string) []Item {
	var items []Item
	index := make(map[string]int)
	section := ""
	add := func(name, value string, commented bool) {
		if section != "" {
			name = section + "." + name
		}
		if i, ok := index[name]; ok {
			if value != "" {
				items[i].Values = append(items[i].Values, value)
			}
			return
		}
		it := Item{Name: name, Source: SourceKeyValue}
		if commented {
			// The live default is "unset"; the commented value is a candidate.
			if value != "" {
				it.Values = []string{value}
			}
		} else {
			it.Default = value
		}
		index[name] = len(items)
		items = append(items, it)
	}
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		commented := false
		if strings.HasPrefix(line, "#") {
			body := strings.TrimSpace(strings.TrimLeft(line, "# "))
			// Only treat it as a commented-out option if it looks like
			// one: `key=value`, a two-token `key value` pair, or a bare
			// keyword. Anything else is prose.
			if k, _, ok := strings.Cut(body, "="); ok && isIdentifier(strings.TrimSpace(k)) {
				line = body
				commented = true
			} else if fields := strings.Fields(body); (len(fields) == 2 || len(fields) == 1) &&
				isIdentifier(fields[0]) && fields[0] == strings.ToLower(fields[0]) &&
				!strings.HasSuffix(body, ".") && !strings.HasSuffix(body, "!") {
				line = body
				commented = true
			} else {
				continue
			}
		}
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			section = strings.TrimSpace(line[1 : len(line)-1])
			continue
		}
		if k, v, ok := strings.Cut(line, "="); ok {
			k = strings.TrimSpace(k)
			if isIdentifier(k) {
				add(k, strings.TrimSpace(v), commented)
			}
			continue
		}
		// mosquitto.conf style: `key value` (space separated).
		if k, v, ok := strings.Cut(line, " "); ok {
			k = strings.TrimSpace(k)
			if isIdentifier(k) {
				add(k, strings.TrimSpace(v), commented)
			}
			continue
		}
		if isIdentifier(line) {
			add(line, "true", commented)
		}
	}
	for i := range items {
		items[i].Values = dedupStrings(items[i].Values)
	}
	return items
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_' || r == '-' || r == '.':
		default:
			return false
		}
	}
	return true
}

// ExtractJSON recursively flattens a JSON document into dotted-path items,
// the hierarchical branch of Algorithm 1. Arrays contribute their first
// element as the representative default.
func ExtractJSON(content string) []Item {
	var doc any
	if err := json.Unmarshal([]byte(content), &doc); err != nil {
		return nil
	}
	var items []Item
	flattenJSON("", doc, &items)
	sort.Slice(items, func(i, j int) bool { return items[i].Name < items[j].Name })
	return items
}

func flattenJSON(path string, v any, items *[]Item) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flattenJSON(joinPath(path, k), t[k], items)
		}
	case []any:
		if len(t) > 0 {
			flattenJSON(path, t[0], items)
		} else if path != "" {
			*items = append(*items, Item{Name: path, Source: SourceHierarchical})
		}
	case nil:
		if path != "" {
			*items = append(*items, Item{Name: path, Source: SourceHierarchical})
		}
	default:
		if path != "" {
			*items = append(*items, Item{
				Name:    path,
				Default: fmt.Sprintf("%v", t),
				Source:  SourceHierarchical,
			})
		}
	}
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

// ExtractXML recursively walks an XML document (CycloneDDS-style
// configuration) and emits one item per leaf element and per attribute,
// named by their slash-joined element path.
func ExtractXML(content string) []Item {
	dec := xml.NewDecoder(strings.NewReader(content))
	var (
		items   []Item
		stack   []string
		text    strings.Builder
		pending []string // enum candidates from the preceding comment
	)
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.Comment:
			// Configuration documentation conventionally lists the
			// allowed values ("one of: a, b, c"); mine them as
			// candidates for the next element.
			pending = nil
			if m := enumSetRe.FindStringSubmatch(string(t)); m != nil {
				raw := m[1]
				if raw == "" {
					raw = m[2]
				}
				for _, v := range strings.FieldsFunc(raw, func(r rune) bool {
					return r == '|' || r == ',' || r == ' '
				}) {
					if v = strings.TrimSpace(v); v != "" {
						pending = append(pending, v)
					}
				}
			}
		case xml.StartElement:
			stack = append(stack, t.Name.Local)
			text.Reset()
			path := strings.Join(stack, "/")
			for _, attr := range t.Attr {
				items = append(items, Item{
					Name:    path + "@" + attr.Name.Local,
					Default: attr.Value,
					Source:  SourceHierarchical,
				})
			}
		case xml.CharData:
			text.Write(t)
		case xml.EndElement:
			if len(stack) == 0 {
				continue
			}
			val := strings.TrimSpace(text.String())
			if val != "" {
				items = append(items, Item{
					Name:    strings.Join(stack, "/"),
					Default: val,
					Values:  pending,
					Source:  SourceHierarchical,
				})
				pending = nil
			}
			stack = stack[:len(stack)-1]
			text.Reset()
		}
	}
	return Consolidate(items)
}

// ExtractCustom handles unstandardized formats with keyword heuristics
// (Algorithm 1's "otherwise" arm): a non-comment line is either a bare
// keyword (a boolean feature toggle, dnsmasq-style), `keyword=value`, or
// `keyword value...`. Commented-out lines that look like options are mined
// as candidate values.
func ExtractCustom(content string) []Item {
	var items []Item
	index := make(map[string]int)
	add := func(name, value string, commented bool) {
		if !isIdentifier(name) {
			return
		}
		if i, ok := index[name]; ok {
			if value != "" && value != items[i].Default {
				items[i].Values = append(items[i].Values, value)
			}
			return
		}
		it := Item{Name: name, Source: SourceCustom}
		if commented {
			if value != "" {
				it.Values = []string{value}
			}
		} else {
			it.Default = value
		}
		index[name] = len(items)
		items = append(items, it)
	}
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		commented := false
		if strings.HasPrefix(line, "#") {
			body := strings.TrimSpace(strings.TrimLeft(line, "# "))
			if body == "" {
				continue
			}
			first, _, hasEq := strings.Cut(body, "=")
			first, _, _ = strings.Cut(first, " ")
			// A disabled option is `key=...`, `key value` or a bare
			// keyword; longer comments are prose.
			if !isIdentifier(strings.TrimSpace(first)) || strings.Contains(body, ". ") ||
				(!hasEq && len(strings.Fields(body)) > 2) {
				continue // prose comment, not a disabled option
			}
			line = body
			commented = true
		}
		if k, v, ok := strings.Cut(line, "="); ok {
			add(strings.TrimSpace(k), strings.TrimSpace(v), commented)
			continue
		}
		if k, v, ok := strings.Cut(line, " "); ok {
			add(strings.TrimSpace(k), strings.TrimSpace(v), commented)
			continue
		}
		add(line, "true", commented)
	}
	for i := range items {
		items[i].Values = dedupStrings(items[i].Values)
	}
	return items
}
