package probe

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"cmfuzz/internal/core/configmodel"
)

func asg(pairs ...string) configmodel.Assignment {
	a := make(configmodel.Assignment, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		a[pairs[i]] = pairs[i+1]
	}
	return a
}

// countingFunc scores an assignment by its size and counts executions.
func countingFunc(calls *int64) Func {
	return func(cfg configmodel.Assignment) int {
		atomic.AddInt64(calls, 1)
		return len(cfg) + 1
	}
}

func TestBatchMemoizesDuplicates(t *testing.T) {
	var calls int64
	ex := NewExecutor(countingFunc(&calls), 4)
	cfgs := []configmodel.Assignment{
		asg("a", "1"),
		asg("b", "2", "a", "1"),
		asg("a", "1"),           // duplicate of [0]
		asg("a", "1", "b", "2"), // same bindings as [1], different build order
	}
	out := ex.Batch(cfgs)
	if want := []int{2, 3, 2, 3}; !reflect.DeepEqual(out, want) {
		t.Fatalf("batch = %v, want %v", out, want)
	}
	if calls != 2 {
		t.Fatalf("probe executed %d times, want 2", calls)
	}
	st := ex.Stats()
	if st.Startups != 2 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 2 startups / 2 hits", st)
	}

	// A second batch is served fully from cache.
	out2 := ex.Batch(cfgs[:2])
	if !reflect.DeepEqual(out2, []int{2, 3}) || atomic.LoadInt64(&calls) != 2 {
		t.Fatalf("re-batch reran probes: out=%v calls=%d", out2, calls)
	}
}

func TestBatchOrderIndependentOfWorkers(t *testing.T) {
	var cfgs []configmodel.Assignment
	for i := 0; i < 50; i++ {
		cfgs = append(cfgs, asg("k", string(rune('a'+i%26)), "i", string(rune('a'+i/26))))
	}
	fn := func(cfg configmodel.Assignment) int { return len(cfg.String()) }
	base := NewExecutor(fn, 1).Batch(cfgs)
	for _, workers := range []int{2, 8, 32} {
		got := NewExecutor(fn, workers).Batch(cfgs)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: batch order diverges", workers)
		}
	}
}

func TestGetMemoizesAcrossGoroutines(t *testing.T) {
	var calls int64
	ex := NewExecutor(countingFunc(&calls), 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if got := ex.Get(asg("x", "y")); got != 2 {
					t.Errorf("Get = %d, want 2", got)
				}
			}
		}()
	}
	wg.Wait()
	st := ex.Stats()
	if st.Startups+st.Hits != 16*20 {
		t.Fatalf("stats don't account for all requests: %+v", st)
	}
	if st.Startups < 1 || st.Startups > 16 {
		t.Fatalf("startups = %d, want a handful at most", st.Startups)
	}
}

func TestBatchPropagatesPanicDeterministically(t *testing.T) {
	fn := func(cfg configmodel.Assignment) int {
		if cfg["boom"] != "" {
			panic("boom:" + cfg["boom"])
		}
		return 1
	}
	cfgs := []configmodel.Assignment{
		asg("ok", "1"),
		asg("boom", "2"),
		asg("boom", "1"),
	}
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				// The lowest-indexed failing assignment wins, for every
				// worker count.
				if r != "boom:2" {
					t.Fatalf("workers=%d: recovered %v, want boom:2", workers, r)
				}
			}()
			NewExecutor(fn, workers).Batch(cfgs)
			t.Fatalf("workers=%d: batch did not panic", workers)
		}()
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	ex := NewExecutor(func(configmodel.Assignment) int { return 0 }, 0)
	if ex.workers < 1 {
		t.Fatalf("workers = %d", ex.workers)
	}
}
