// Package probe provides the parallel startup-probe executor behind
// relation quantification (paper §III-B1). Each probe boots a throwaway
// subject instance under one configuration assignment and measures its
// startup coverage; since every probe is a pure function of its
// assignment, the probe matrix is embarrassingly parallel and highly
// redundant (standalone probes reappear inside pair matrices, and pairs
// whose values match the defaults collapse onto the baseline).
//
// The Executor exploits both properties: it fans a batch of assignments
// across a bounded worker pool and memoizes results in a cache keyed by
// the canonical rendering of the assignment, so every distinct
// configuration is booted exactly once per Executor regardless of how
// many times — or from how many goroutines — it is requested. Results
// are returned in request order, which lets callers merge them
// deterministically: the output of a batch is byte-identical for any
// worker count, including 1.
package probe

import (
	"runtime"
	"sync"

	"cmfuzz/internal/core/configmodel"
	"cmfuzz/internal/telemetry"
	"cmfuzz/internal/telemetry/trace"
)

// Func measures the startup branch coverage of one configuration
// assignment. Startup failure (a conflicting configuration) must return
// 0. The function must be a pure function of the assignment and safe for
// concurrent calls with distinct throwaway instances.
type Func func(cfg configmodel.Assignment) int

// Stats summarizes an Executor's activity.
type Stats struct {
	// Startups is how many probes actually executed (cache misses) —
	// the "Probes" count every table reports.
	Startups int
	// Hits is how many requests were served from the memo cache.
	Hits int
}

// An Executor runs startup probes across a worker pool with
// memoization. It is safe for concurrent use.
type Executor struct {
	fn      Func
	workers int
	tel     *telemetry.Recorder
	tr      *trace.Span

	mu    sync.Mutex
	cache map[string]int
	stats Stats
}

// NewExecutor returns an executor over fn with the given worker count.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func NewExecutor(fn Func, workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{fn: fn, workers: workers, cache: make(map[string]int)}
}

// SetTelemetry installs a telemetry sink: each Batch then emits one
// probe_stats event (requests, startups, cache hits) and maintains the
// probe counters. A nil recorder (the default) is a no-op.
func (e *Executor) SetTelemetry(r *telemetry.Recorder) { e.tel = r }

// SetTrace installs a parent wall-clock span: each Batch then records a
// probe.pool child covering the worker-pool fan-out. Must be called
// before the executor is used; a nil span (the default) is a no-op.
func (e *Executor) SetTrace(s *trace.Span) { e.tr = s }

// Key returns the memoization key of an assignment: its canonical
// (sorted k=v) rendering, so two assignments binding the same values
// share one probe no matter how they were built.
func Key(cfg configmodel.Assignment) string { return cfg.String() }

// Get probes one assignment, memoized. Concurrent Gets of the same
// assignment may race to execute the probe; the first result wins and
// duplicates are discarded (the probe is pure, so all results agree).
func (e *Executor) Get(cfg configmodel.Assignment) int {
	key := Key(cfg)
	e.mu.Lock()
	if cov, ok := e.cache[key]; ok {
		e.stats.Hits++
		e.mu.Unlock()
		return cov
	}
	e.mu.Unlock()
	cov := e.fn(cfg)
	e.mu.Lock()
	defer e.mu.Unlock()
	if prev, ok := e.cache[key]; ok {
		e.stats.Hits++
		return prev
	}
	e.cache[key] = cov
	e.stats.Startups++
	return cov
}

// Batch probes every assignment in cfgs and returns their coverages in
// request order. Duplicate assignments — within the batch or against
// earlier calls — are probed once; the remaining unique assignments are
// fanned across the worker pool. A panic inside a probe (a seeded
// configuration-parsing defect escaping the caller's capture) is
// re-raised on the calling goroutine, deterministically from the
// lowest-indexed failing assignment.
func (e *Executor) Batch(cfgs []configmodel.Assignment) []int {
	keys := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		keys[i] = Key(cfg)
	}

	// Collect the unique assignments this batch still needs to run.
	type task struct {
		key string
		cfg configmodel.Assignment
	}
	var pending []task
	e.mu.Lock()
	seen := make(map[string]bool, len(cfgs))
	for i, key := range keys {
		if _, ok := e.cache[key]; ok || seen[key] {
			continue
		}
		seen[key] = true
		pending = append(pending, task{key: key, cfg: cfgs[i]})
	}
	e.mu.Unlock()

	covs := make([]int, len(pending))
	panics := make([]any, len(pending))
	if len(pending) > 0 {
		workers := e.workers
		if workers > len(pending) {
			workers = len(pending)
		}
		pool := e.tr.Child("probe.pool",
			trace.A("pending", len(pending)), trace.A("workers", workers))
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					func() {
						defer func() {
							if r := recover(); r != nil {
								panics[i] = r
							}
						}()
						covs[i] = e.fn(pending[i].cfg)
					}()
				}
			}()
		}
		for i := range pending {
			next <- i
		}
		close(next)
		wg.Wait()
		pool.End()

		e.mu.Lock()
		for i, t := range pending {
			if panics[i] != nil {
				continue
			}
			e.cache[t.key] = covs[i]
			e.stats.Startups++
		}
		e.mu.Unlock()
		for i := range pending {
			if panics[i] != nil {
				panic(panics[i])
			}
		}
	}

	// Serve the whole batch from the cache, in request order.
	out := make([]int, len(cfgs))
	e.mu.Lock()
	for i, key := range keys {
		out[i] = e.cache[key]
	}
	e.stats.Hits += len(cfgs) - len(pending)
	e.mu.Unlock()
	e.tel.Emit(telemetry.Event{Type: telemetry.EvProbeStats, Instance: -1,
		Requests: len(cfgs), Startups: len(pending), Hits: len(cfgs) - len(pending)})
	e.tel.Count(telemetry.CtrProbeStartups, len(pending))
	e.tel.Count(telemetry.CtrProbeCacheHits, len(cfgs)-len(pending))
	return out
}

// Stats returns a snapshot of the executor's startup and cache-hit
// counters. Both depend only on the request history, never on the
// worker count or goroutine scheduling.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
